package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	symspmv "repro"
	"repro/internal/obs"
)

// Options configures the registry and the batchers it creates.
type Options struct {
	// Threads caps the autotune search (or sets the thread count for a fixed
	// format). 0 means the facade default.
	Threads int

	// Domains is the NUMA domain count handed to kernel preparation: the
	// autotuner shards its hierarchical plan variants over it, and fixed SSS
	// formats run their two-level reduction on it. 0 detects the machine
	// topology; 1 forces flat execution.
	Domains int

	// TuneCacheDir is the persistent tuning-cache directory handed to
	// AutoKernel: matrices seen before (same fingerprint, same machine)
	// warm-start without timed trials. "" uses the facade default; "off"
	// disables caching.
	TuneCacheDir string

	// Window is how long the batcher holds a batch open after a second
	// compatible request arrives. 0 disables window-based collection;
	// opportunistic queue draining still coalesces.
	Window time.Duration

	// MaxBatch caps real lanes per dispatch (clamped to [1, 8]).
	MaxBatch int

	// QueueDepth bounds each matrix's request queue; a full queue rejects
	// with ErrQueueFull.
	QueueDepth int
}

// DefaultOptions are the server defaults: a 2ms window keeps solo-request
// latency overhead at zero (the window only opens once a second request is
// already waiting) while catching genuinely concurrent arrivals.
func DefaultOptions() Options {
	return Options{
		Window:     2 * time.Millisecond,
		MaxBatch:   maxLanes,
		QueueDepth: 64,
	}
}

// FormatNames maps the CLI/API format spellings onto facade formats. The
// empty string (and "auto") selects autotuning.
var FormatNames = map[string]symspmv.Format{
	"csr":       symspmv.CSR,
	"csx":       symspmv.CSX,
	"bcsr":      symspmv.BCSR,
	"sss":       symspmv.SSSIndexed,
	"sss-idx":   symspmv.SSSIndexed,
	"sss-naive": symspmv.SSSNaive,
	"sss-eff":   symspmv.SSSEffective,
	"sss-color": symspmv.SSSColored,
	"csx-sym":   symspmv.CSXSym,
	"csb":       symspmv.CSB,
}

// LoadSpec describes one matrix to register.
type LoadSpec struct {
	// Path is a Matrix Market file on the server's filesystem.
	Path string
	// Format fixes the kernel format by name; empty or "auto" autotunes
	// with the tuning cache as warm start.
	Format string
	// Threads overrides Options.Threads for this matrix.
	Threads int
}

// Entry is one loaded matrix: the prepared kernel, its batcher, and the
// metadata the list endpoint reports.
type Entry struct {
	ID       string
	N        int
	NNZ      int
	Format   string
	Threads  int
	Bytes    int64
	SpMM     bool // kernel has an SpMM fast path, so requests can coalesce
	CacheHit bool // autotune plan came from the tuning cache (no timed trials)
	Trials   int
	LoadedAt time.Time

	batcher  *Batcher
	kern     symspmv.Kernel
	requests *obs.Counter
}

// Registry owns the loaded matrices. All methods are safe for concurrent
// use; kernel preparation happens outside the registry lock so a slow
// autotune does not block serving other matrices.
type Registry struct {
	opts Options

	mu      sync.Mutex
	entries map[string]*Entry
	loading map[string]bool // ids with a Load in flight (reserves the id)
	closed  bool
}

// NewRegistry builds an empty registry.
func NewRegistry(opts Options) *Registry {
	if opts.MaxBatch == 0 {
		opts.MaxBatch = maxLanes
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 64
	}
	return &Registry{
		opts:    opts,
		entries: make(map[string]*Entry),
		loading: make(map[string]bool),
	}
}

// Load reads the matrix at spec.Path, prepares a kernel for it (autotuned
// with the tuning cache unless spec.Format pins one), and registers it
// under id. Each matrix is prepared exactly once; concurrent loads of the
// same id conflict with ErrExists.
func (reg *Registry) Load(id string, spec LoadSpec) (*Entry, error) {
	if id == "" || strings.ContainsAny(id, "/ \t\n") {
		return nil, BadRequestf("matrix id %q must be non-empty without slashes or spaces", id)
	}

	reg.mu.Lock()
	if reg.closed {
		reg.mu.Unlock()
		return nil, ErrDraining
	}
	if reg.entries[id] != nil || reg.loading[id] {
		reg.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, id)
	}
	reg.loading[id] = true
	reg.mu.Unlock()
	defer func() {
		reg.mu.Lock()
		delete(reg.loading, id)
		reg.mu.Unlock()
	}()

	a, err := symspmv.ReadMatrixMarketFile(spec.Path)
	if err != nil {
		return nil, BadRequestf("read %s: %v", spec.Path, err)
	}
	kern, info, err := reg.prepare(a, spec)
	if err != nil {
		return nil, err
	}
	// Bind the roofline attribution engine while the kernel is idle — only
	// when sampling is on (the first bind per pool shape runs a short STREAM
	// calibration, which a sampling-off server should not pay at load time).
	// No-op for formats attribution does not model.
	if obs.SamplingEnabled() {
		if _, err := symspmv.EnableAttribution(kern); err != nil {
			kern.Close()
			return nil, fmt.Errorf("serve: bind attribution: %w", err)
		}
	}

	e := &Entry{
		ID:       id,
		N:        a.N(),
		NNZ:      a.NNZ(),
		Format:   info.format,
		Threads:  kern.Threads(),
		Bytes:    kern.Bytes(),
		SpMM:     symspmv.SupportsMulMat(kern),
		CacheHit: info.cacheHit,
		Trials:   info.trials,
		LoadedAt: time.Now(),
		kern:     kern,
		batcher:  newBatcher(kern, a.N(), reg.opts.QueueDepth, reg.opts.MaxBatch, reg.opts.Window),
		requests: obs.NewCounter("symspmv_serve_matrix_requests_total",
			"requests per loaded matrix", "matrix", id),
	}

	reg.mu.Lock()
	if reg.closed {
		reg.mu.Unlock()
		e.batcher.Stop()
		kern.Close()
		return nil, ErrDraining
	}
	reg.entries[id] = e
	reg.mu.Unlock()
	loadsTotal.Inc()
	return e, nil
}

type prepInfo struct {
	format   string
	cacheHit bool
	trials   int
}

func (reg *Registry) prepare(a *symspmv.Matrix, spec LoadSpec) (symspmv.Kernel, prepInfo, error) {
	threads := spec.Threads
	if threads == 0 {
		threads = reg.opts.Threads
	}
	name := strings.ToLower(spec.Format)
	if name == "" || name == "auto" {
		var auto []symspmv.AutoOption
		if threads > 0 {
			auto = append(auto, symspmv.AutoMaxThreads(threads))
		}
		if reg.opts.Domains != 0 {
			auto = append(auto, symspmv.AutoDomains(reg.opts.Domains))
		}
		switch reg.opts.TuneCacheDir {
		case "":
		case "off":
			auto = append(auto, symspmv.AutoNoCache())
		default:
			auto = append(auto, symspmv.AutoCacheDir(reg.opts.TuneCacheDir))
		}
		kern, d, err := symspmv.AutoKernel(a, auto...)
		if err != nil {
			return nil, prepInfo{}, fmt.Errorf("serve: autotune: %w", err)
		}
		return kern, prepInfo{format: d.Plan.String(), cacheHit: d.CacheHit, trials: d.Trials}, nil
	}
	f, ok := FormatNames[name]
	if !ok {
		return nil, prepInfo{}, BadRequestf("unknown format %q", spec.Format)
	}
	var opts []symspmv.Option
	if threads > 0 {
		opts = append(opts, symspmv.Threads(threads))
	}
	// 0 detects the topology (flat on single-domain machines), so fixed
	// formats follow the same NUMA default the autotuned path has.
	opts = append(opts, symspmv.Domains(reg.opts.Domains))
	kern, err := a.Kernel(f, opts...)
	if err != nil {
		return nil, prepInfo{}, BadRequestf("build %s kernel: %v", name, err)
	}
	return kern, prepInfo{format: f.String()}, nil
}

// Get returns the entry for id, or ErrNotFound.
func (reg *Registry) Get(id string) (*Entry, error) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	e := reg.entries[id]
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return e, nil
}

// List snapshots the loaded entries, sorted by id.
func (reg *Registry) List() []*Entry {
	reg.mu.Lock()
	out := make([]*Entry, 0, len(reg.entries))
	for _, e := range reg.entries {
		out = append(out, e)
	}
	reg.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Unload removes id, stops its batcher (queued requests fail with
// ErrUnloaded), and releases the kernel.
func (reg *Registry) Unload(id string) error {
	reg.mu.Lock()
	e := reg.entries[id]
	delete(reg.entries, id)
	reg.mu.Unlock()
	if e == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	e.batcher.Stop()
	e.kern.Close()
	return nil
}

// Close drains every matrix: new loads fail with ErrDraining, every batcher
// stops after finishing its in-flight dispatch, kernels are released.
func (reg *Registry) Close() {
	reg.mu.Lock()
	if reg.closed {
		reg.mu.Unlock()
		return
	}
	reg.closed = true
	entries := make([]*Entry, 0, len(reg.entries))
	for _, e := range reg.entries {
		entries = append(entries, e)
	}
	reg.entries = make(map[string]*Entry)
	reg.mu.Unlock()
	for _, e := range entries {
		e.batcher.Stop()
		e.kern.Close()
	}
}
