package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/obs"
)

// Server is the HTTP front end: admission control, request decoding, and the
// wait-for-lane loop around the registry's batchers.
type Server struct {
	reg         *Registry
	mux         *http.ServeMux
	maxInflight int64
	maxBody     int64
	draining    atomic.Bool
	current     atomic.Int64
}

// ServerOptions tunes the HTTP layer.
type ServerOptions struct {
	// MaxInflight bounds admitted-but-unanswered requests server-wide;
	// beyond it new work is rejected with ErrSaturated (503). 0 means 256.
	MaxInflight int
	// MaxBodyBytes caps request bodies. 0 means 256 MiB — a dense float64
	// vector for N = 4M rows encoded as JSON is on that order.
	MaxBodyBytes int64
}

// NewServer wires the handlers onto a fresh mux, including the /metrics
// endpoint backed by the process-wide obs registry.
func NewServer(reg *Registry, opts ServerOptions) *Server {
	if opts.MaxInflight == 0 {
		opts.MaxInflight = 256
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = 256 << 20
	}
	s := &Server{reg: reg, mux: http.NewServeMux(), maxInflight: int64(opts.MaxInflight), maxBody: opts.MaxBodyBytes}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/matrices", s.handleList)
	s.mux.HandleFunc("POST /v1/matrices", s.handleLoad)
	s.mux.HandleFunc("DELETE /v1/matrices/{id}", s.handleUnload)
	s.mux.HandleFunc("POST /v1/matrices/{id}/spmv", s.handleSpMV)
	s.mux.HandleFunc("POST /v1/matrices/{id}/solve", s.handleSolve)
	s.mux.Handle("GET /metrics", obs.Default.Handler())
	for pattern, h := range obs.DebugHandlers() {
		s.mux.Handle("GET "+pattern, h)
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// StartDraining flips the server into shutdown mode: every subsequent
// request is rejected with ErrDraining while in-flight work completes. The
// caller follows with http.Server.Shutdown and Registry.Close.
func (s *Server) StartDraining() { s.draining.Store(true) }

// admit applies the server-wide gates; the returned release func must be
// called when the request is answered.
func (s *Server) admit() (release func(), err error) {
	if s.draining.Load() {
		rejectedDraining.Inc()
		return nil, ErrDraining
	}
	if s.current.Add(1) > s.maxInflight {
		s.current.Add(-1)
		rejectedSaturated.Inc()
		return nil, ErrSaturated
	}
	inflightAdd(1)
	return func() {
		s.current.Add(-1)
		inflightAdd(-1)
	}, nil
}

type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, err error) {
	status, code := StatusFor(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	var body errorBody
	body.Error.Code = code
	body.Error.Message = err.Error()
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return BadRequestf("decode body: %v", err)
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": status,
		"commit": buildinfo.Commit(),
		"api":    buildinfo.ServeAPI,
	})
}

type loadRequest struct {
	ID      string `json:"id"`
	Path    string `json:"path"`
	Format  string `json:"format,omitempty"`
	Threads int    `json:"threads,omitempty"`
}

type matrixInfo struct {
	ID       string `json:"id"`
	N        int    `json:"n"`
	NNZ      int    `json:"nnz"`
	Format   string `json:"format"`
	Threads  int    `json:"threads"`
	Bytes    int64  `json:"bytes"`
	SpMM     bool   `json:"spmm"`
	CacheHit bool   `json:"tune_cache_hit"`
	Trials   int    `json:"tune_trials"`
	LoadedAt string `json:"loaded_at"`
}

func infoOf(e *Entry) matrixInfo {
	return matrixInfo{
		ID: e.ID, N: e.N, NNZ: e.NNZ, Format: e.Format, Threads: e.Threads,
		Bytes: e.Bytes, SpMM: e.SpMM, CacheHit: e.CacheHit, Trials: e.Trials,
		LoadedAt: e.LoadedAt.UTC().Format(time.RFC3339),
	}
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, ErrDraining)
		return
	}
	var req loadRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Path == "" {
		writeError(w, BadRequestf("path is required"))
		return
	}
	e, err := s.reg.Load(req.ID, LoadSpec{Path: req.Path, Format: req.Format, Threads: req.Threads})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, infoOf(e))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.List()
	out := make([]matrixInfo, len(entries))
	for i, e := range entries {
		out[i] = infoOf(e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"matrices": out})
}

func (s *Server) handleUnload(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Unload(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"unloaded": r.PathValue("id")})
}

type spmvRequest struct {
	X     []float64 `json:"x,omitempty"`
	XOnes bool      `json:"x_ones,omitempty"`
}

type spmvResponse struct {
	Y          []float64 `json:"y"`
	BatchLanes int       `json:"batch_lanes"`
}

type solveRequest struct {
	B         []float64 `json:"b,omitempty"`
	BOnes     bool      `json:"b_ones,omitempty"` // b = A·1, so the exact solution is all-ones
	Tol       float64   `json:"tol,omitempty"`
	MaxIter   int       `json:"max_iter,omitempty"`
	TimeoutMS int       `json:"timeout_ms,omitempty"`
}

type solveResponse struct {
	X          []float64 `json:"x"`
	Iterations int       `json:"iterations"`
	Converged  bool      `json:"converged"`
	Residual   float64   `json:"residual"`
	BatchLanes int       `json:"batch_lanes"`
}

// inputVector validates the request vector against the matrix dimension,
// synthesizing the ones-vector variants server-side.
func (s *Server) inputVector(e *Entry, v []float64, ones bool, name string) ([]float64, error) {
	if ones {
		if v != nil {
			return nil, BadRequestf("give %s or %s_ones, not both", name, name)
		}
		x := make([]float64, e.N)
		for i := range x {
			x[i] = 1
		}
		if name == "b" {
			// b = A·1 through the registered kernel, so "converged" means
			// the solver reproduced the all-ones solution.
			req := newRequest("", e.ID, batchKey{op: opSpMV}, x, context.Background())
			if err := e.batcher.Enqueue(req); err != nil {
				return nil, err
			}
			out := <-req.done
			if out.err != nil {
				return nil, out.err
			}
			return out.y, nil
		}
		return x, nil
	}
	if len(v) != e.N {
		return nil, BadRequestf("%s has %d entries, matrix has %d rows", name, len(v), e.N)
	}
	return v, nil
}

// runRequest enqueues req on the matrix's batcher and waits for its lane
// result or the caller giving up.
func (s *Server) runRequest(e *Entry, req *request) (outcome, error) {
	e.requests.Inc()
	if err := e.batcher.Enqueue(req); err != nil {
		return outcome{}, err
	}
	select {
	case out := <-req.done:
		return out, out.err
	case <-req.ctx.Done():
		// The batcher still owns the request and will discard its result;
		// done is buffered so the dispatcher never blocks on us.
		return outcome{}, req.ctx.Err()
	}
}

func (s *Server) handleSpMV(w http.ResponseWriter, r *http.Request) {
	release, err := s.admit()
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	e, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req spmvRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	x, err := s.inputVector(e, req.X, req.XOnes, "x")
	if err != nil {
		writeError(w, err)
		return
	}
	rq := newRequest(requestID(r.Header), e.ID, batchKey{op: opSpMV}, x, r.Context())
	w.Header().Set("X-Request-Id", rq.id)
	out, err := s.runRequest(e, rq)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, spmvResponse{Y: out.y, BatchLanes: out.lanes})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	release, err := s.admit()
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	e, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req solveRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	b, err := s.inputVector(e, req.B, req.BOnes, "b")
	if err != nil {
		writeError(w, err)
		return
	}
	if req.Tol < 0 || req.MaxIter < 0 || req.TimeoutMS < 0 {
		writeError(w, BadRequestf("tol, max_iter and timeout_ms must be non-negative"))
		return
	}
	tol := req.Tol
	if tol == 0 {
		tol = 1e-10
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	rq := newRequest(requestID(r.Header), e.ID, batchKey{op: opSolve, tol: tol, maxIter: req.MaxIter}, b, ctx)
	w.Header().Set("X-Request-Id", rq.id)
	out, err := s.runRequest(e, rq)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, solveResponse{
		X:          out.y,
		Iterations: out.iterations,
		Converged:  out.converged,
		Residual:   out.residual,
		BatchLanes: out.lanes,
	})
}
