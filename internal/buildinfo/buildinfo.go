// Package buildinfo is the single source of version provenance for every
// binary and machine-readable artifact in the repository: the git commit the
// build came from plus the version numbers of the on-disk and on-wire
// schemas. The cmds print it behind a -version flag, the harness stamps it
// into the BENCH_*.json documents, and the serve API reports it from
// /healthz, so an archived benchmark record, a tuning cache, and a running
// server can all be attributed to one code revision.
package buildinfo

import (
	"fmt"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
)

// Schema versions. Bump these where the format changes, not at the call
// sites: the writer, the reader, and -version output all quote the same
// constant.
const (
	// BenchSchema is the bench-json document schema (BENCH_pr3.json).
	// Version 2 added the git commit + machine signature provenance stamp.
	BenchSchema = "symspmv-bench/2"
	// SpMMBenchSchema is the spmm-bench document schema (BENCH_pr6.json).
	SpMMBenchSchema = "symspmv-spmm-bench/1"
	// ServeAPI is the symspmv-serve HTTP API version prefix (/v1/...).
	ServeAPI = "v1"
)

var (
	commitOnce sync.Once
	commitVal  string
)

// Commit resolves the git commit of the running binary, best effort:
// the VCS stamp Go embeds in module builds first, then `git rev-parse` for
// `go run` / `go test` invocations inside a checkout, and "unknown" when
// neither is available (e.g. an installed binary outside the repository).
// The first twelve hex digits are returned; "-dirty" is appended when the
// VCS stamp reports uncommitted modifications.
func Commit() string {
	commitOnce.Do(func() { commitVal = resolveCommit() })
	return commitVal
}

func resolveCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "-dirty"
			}
			return rev
		}
	}
	// `go run` and `go test` binaries carry no VCS stamp; fall back to the
	// working tree.
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// Version renders the full provenance block a -version flag prints: the
// program name, commit, toolchain, and every schema version this revision
// reads or writes.
func Version(program string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s (%s)\n", program, Commit(), runtime.Version())
	fmt.Fprintf(&b, "  bench-json schema:  %s\n", BenchSchema)
	fmt.Fprintf(&b, "  spmm-bench schema:  %s\n", SpMMBenchSchema)
	fmt.Fprintf(&b, "  serve API:          %s\n", ServeAPI)
	return b.String()
}
