package buildinfo

import (
	"regexp"
	"strings"
	"testing"
)

func TestCommitShape(t *testing.T) {
	c := Commit()
	if c == "" {
		t.Fatal("Commit() returned an empty string")
	}
	// Either a 12-hex-digit prefix (optionally -dirty) or the literal
	// "unknown" fallback; anything else means the resolution logic regressed.
	ok, err := regexp.MatchString(`^([0-9a-f]{12}(-dirty)?|unknown)$`, c)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("Commit() = %q, want 12 hex digits or \"unknown\"", c)
	}
	if c2 := Commit(); c2 != c {
		t.Fatalf("Commit() not stable: %q then %q", c, c2)
	}
}

func TestVersionQuotesEverySchema(t *testing.T) {
	v := Version("test-prog")
	for _, want := range []string{"test-prog", Commit(), BenchSchema, SpMMBenchSchema, ServeAPI} {
		if !strings.Contains(v, want) {
			t.Errorf("Version() missing %q:\n%s", want, v)
		}
	}
}
