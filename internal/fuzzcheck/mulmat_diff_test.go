package fuzzcheck

import (
	"errors"
	"math"
	"testing"

	symspmv "repro"
)

// The SpMM differential suite: every adversarial case × every SpMM-capable
// format × widths spanning the generic fallback (3) and the register-blocked
// specializations (2, 4, 8) × thread counts, against a serial dense
// multi-RHS reference. Hub-cached variants run the same check with the hub
// analysis forced on, so the remapped hot-x path faces the same degenerate
// shapes as the plain kernels.

var spmmFormats = []symspmv.Format{
	symspmv.CSR, symspmv.SSSNaive, symspmv.SSSEffective,
	symspmv.SSSIndexed, symspmv.SSSColored,
}

var noSpMMFormats = []symspmv.Format{
	symspmv.CSX, symspmv.BCSR, symspmv.SSSAtomic, symspmv.CSXSym, symspmv.CSB,
}

// forcedHub engages the hub remap regardless of profitability, so even flat
// adversarial matrices exercise the hot-x path.
var forcedHub = symspmv.HubOptions{MaxCols: 16, MinDegree: 1, MinCoverage: -1}

var spmmThreads = []int{1, 3, 8}
var spmmWidths = []int{1, 2, 3, 4, 8}

func TestDifferentialSpMM(t *testing.T) {
	for _, tc := range AdversarialSuite() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			a := buildMatrix(t, tc.M)
			n := tc.M.Rows
			for _, nv := range spmmWidths {
				x := TestX(n*nv, int64(n*nv)+13)
				ref, scale := ReferenceMat(tc.M, x, nv)
				for _, f := range spmmFormats {
					hubVariants := []bool{false}
					if f != symspmv.CSR {
						hubVariants = append(hubVariants, true)
					}
					for _, hub := range hubVariants {
						opts := []symspmv.Option{}
						if hub {
							opts = append(opts, symspmv.HubCacheOptions(forcedHub))
						}
						for _, p := range spmmThreads {
							k, err := a.Kernel(f, append([]symspmv.Option{symspmv.Threads(p)}, opts...)...)
							if err != nil {
								t.Errorf("%v hub=%v p=%d: Kernel: %v", f, hub, p, err)
								continue
							}
							y := make([]float64, n*nv)
							for rep := 0; rep < 2; rep++ {
								for i := range y {
									y[i] = math.NaN()
								}
								if err := symspmv.MulMat(k, x, y, nv); err != nil {
									t.Errorf("%v hub=%v p=%d nv=%d: MulMat: %v", f, hub, p, nv, err)
									break
								}
								if err := Compare(y, ref, scale, Tol); err != nil {
									t.Errorf("%v hub=%v p=%d nv=%d rep=%d: %v", f, hub, p, nv, rep, err)
									break
								}
							}
							k.Close()
						}
					}
				}
			}
		})
	}
}

// TestDifferentialHubMulVec runs the single-vector hub-cached kernels —
// including CSX-Sym's, which has no SpMM path — against the dense reference.
func TestDifferentialHubMulVec(t *testing.T) {
	hubFormats := []symspmv.Format{
		symspmv.SSSNaive, symspmv.SSSEffective, symspmv.SSSIndexed,
		symspmv.SSSColored, symspmv.CSXSym,
	}
	for _, tc := range AdversarialSuite() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			a := buildMatrix(t, tc.M)
			n := tc.M.Rows
			x := TestX(n, int64(n)+29)
			ref, scale := Reference(tc.M, x)
			for _, f := range hubFormats {
				for _, p := range spmmThreads {
					k, err := a.Kernel(f, symspmv.Threads(p), symspmv.HubCacheOptions(forcedHub))
					if err != nil {
						t.Errorf("%v p=%d: Kernel: %v", f, p, err)
						continue
					}
					y := make([]float64, n)
					for rep := 0; rep < 2; rep++ {
						for i := range y {
							y[i] = math.NaN()
						}
						k.MulVec(x, y)
						if err := Compare(y, ref, scale, Tol); err != nil {
							t.Errorf("%v p=%d rep=%d: %v", f, p, rep, err)
							break
						}
					}
					k.Close()
				}
			}
		})
	}
}

// TestSpMMUnsupportedFormats pins the error contract: formats without an
// SpMM kernel return a typed *MulMatError, never a panic or a wrong answer.
func TestSpMMUnsupportedFormats(t *testing.T) {
	tc := AdversarialSuite()[0]
	for _, c := range AdversarialSuite() {
		if c.Name == "random-spd-150" {
			tc = c
		}
	}
	a := buildMatrix(t, tc.M)
	n := tc.M.Rows
	for _, f := range noSpMMFormats {
		k, err := a.Kernel(f, symspmv.Threads(2))
		if err != nil {
			t.Fatalf("%v: Kernel: %v", f, err)
		}
		x := make([]float64, n*4)
		y := make([]float64, n*4)
		err = symspmv.MulMat(k, x, y, 4)
		var me *symspmv.MulMatError
		if !errors.As(err, &me) {
			t.Errorf("%v: MulMat error = %v, want *MulMatError", f, err)
		} else if me.Format != f || me.NV != 4 {
			t.Errorf("%v: MulMatError carries %v/nv=%d", f, me.Format, me.NV)
		}
		k.Close()
	}
}
