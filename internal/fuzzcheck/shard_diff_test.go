package fuzzcheck

import (
	"math"
	"testing"

	symspmv "repro"
)

// shardTopologies are the synthetic NUMA shapes the differential suite runs
// under: flat, two-domain, and four-domain pools. Domain counts beyond the
// worker count are clamped by the pool, so small thread counts double as the
// p < domains edge case.
var shardTopologies = []int{1, 2, 4}

// sssFormats are the symmetric formats whose reduction path is affected by
// domain sharding: the local-vector methods gain the hierarchical two-level
// schedule, Atomic and Colored run flat on the sharded pool — every one must
// stay within the differential tolerance regardless of topology.
var sssFormats = []symspmv.Format{
	symspmv.SSSNaive, symspmv.SSSEffective, symspmv.SSSIndexed,
	symspmv.SSSAtomic, symspmv.SSSColored,
}

// TestShardedTopologies is the domain-sharded counterpart of the
// differential tentpole: every adversarial case × every SSS reduction
// method × synthetic topologies of 1, 2 and 4 domains (with one and two
// workers per domain) must agree with the serial dense reference to
// |y_i − ref_i| ≤ 1e-12·Σ_j|A_ij·x_j|. The hierarchical schedule regroups
// the reduction's float additions, so this is exactly the bound it promises;
// on one domain it never engages and the flat path is exercised unchanged.
func TestShardedTopologies(t *testing.T) {
	for _, tc := range AdversarialSuite() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			a := buildMatrix(t, tc.M)
			n := tc.M.Rows
			x := TestX(n, int64(n)+11)
			ref, scale := Reference(tc.M, x)
			for _, d := range shardTopologies {
				for _, p := range []int{d, 2 * d} {
					for _, f := range sssFormats {
						k, err := a.Kernel(f, symspmv.Threads(p), symspmv.Domains(d))
						if err != nil {
							t.Errorf("%v p=%d d=%d: Kernel: %v", f, p, d, err)
							continue
						}
						y := make([]float64, n)
						for rep := 0; rep < 2; rep++ {
							for i := range y {
								y[i] = math.NaN()
							}
							k.MulVec(x, y)
							if err := Compare(y, ref, scale, Tol); err != nil {
								t.Errorf("%v p=%d d=%d rep=%d: %v", f, p, d, rep, err)
								break
							}
						}
						k.Close()
					}
				}
			}
		})
	}
}
