package fuzzcheck

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// Reference computes y = A·x with a trusted serial dense sweep, plus the
// per-element magnitude sum scale_i = Σ_j |A_ij|·|x_j| over the full
// operator (symmetric mirrors +v, skew-symmetric mirrors −v, general input
// is taken as stored). The dense expansion deliberately shares no code with
// any kernel under test: duplicates are summed into the dense array first
// (matching the Normalize step every format builder runs), then a plain
// row-major dense multiply produces the reference.
//
// scale is the yardstick for comparing kernels: summing n floating-point
// terms in a different order perturbs the result by at most O(n·ε)·Σ|terms|,
// so |y_i − ref_i| ≤ tol·scale_i with tol = 1e-12 passes every legitimate
// reordering (including denormal and 1e150-magnitude values, where any
// absolute tolerance is meaningless) while catching real indexing bugs,
// which move whole entries rather than low-order bits. A zero scale_i means
// row i has no contributions at all, so y_i must be exactly ±0.
func Reference(m *matrix.COO, x []float64) (y, scale []float64) {
	n := m.Rows
	dense := make([]float64, n*n)
	for k := range m.Val {
		r, c, v := int(m.RowIdx[k]), int(m.ColIdx[k]), m.Val[k]
		dense[r*n+c] += v
		if m.Symmetric && r != c {
			if m.Skew {
				dense[c*n+r] -= v
			} else {
				dense[c*n+r] += v
			}
		}
	}
	y = make([]float64, n)
	scale = make([]float64, n)
	for r := 0; r < n; r++ {
		row := dense[r*n : (r+1)*n]
		var sum, mag float64
		for c, v := range row {
			if v == 0 {
				continue
			}
			sum += v * x[c]
			mag += math.Abs(v) * math.Abs(x[c])
		}
		y[r] = sum
		scale[r] = mag
	}
	return y, scale
}

// ReferenceMat is the multi-RHS analog of Reference: Y = A·X for nv
// interleaved right-hand sides (x[i*nv+v] is element i of vector v), again
// via a trusted serial dense sweep sharing no code with the kernels. The
// returned y and scale use the same interleaved layout, so Compare applies
// unchanged.
func ReferenceMat(m *matrix.COO, x []float64, nv int) (y, scale []float64) {
	n := m.Rows
	dense := make([]float64, n*n)
	for k := range m.Val {
		r, c, v := int(m.RowIdx[k]), int(m.ColIdx[k]), m.Val[k]
		dense[r*n+c] += v
		if m.Symmetric && r != c {
			if m.Skew {
				dense[c*n+r] -= v
			} else {
				dense[c*n+r] += v
			}
		}
	}
	y = make([]float64, n*nv)
	scale = make([]float64, n*nv)
	for r := 0; r < n; r++ {
		row := dense[r*n : (r+1)*n]
		for v := 0; v < nv; v++ {
			var sum, mag float64
			for c, a := range row {
				if a == 0 {
					continue
				}
				sum += a * x[c*nv+v]
				mag += math.Abs(a) * math.Abs(x[c*nv+v])
			}
			y[r*nv+v] = sum
			scale[r*nv+v] = mag
		}
	}
	return y, scale
}

// Compare checks got against the reference within tol·scale per element and
// reports the first violation. Non-finite got values fail unless the
// reference produced the same non-finite value (a matrix holding Inf is
// allowed to return Inf, but a kernel must not invent one).
func Compare(got, ref, scale []float64, tol float64) error {
	if len(got) != len(ref) {
		return fmt.Errorf("length %d != reference %d", len(got), len(ref))
	}
	for i := range got {
		d := math.Abs(got[i] - ref[i])
		if d <= tol*scale[i] {
			continue
		}
		if math.IsNaN(ref[i]) && math.IsNaN(got[i]) {
			continue
		}
		if math.IsInf(ref[i], 1) && math.IsInf(got[i], 1) {
			continue
		}
		if math.IsInf(ref[i], -1) && math.IsInf(got[i], -1) {
			continue
		}
		return fmt.Errorf("y[%d] = %g, reference %g (|Δ| = %g > %g·%g)",
			i, got[i], ref[i], d, tol, scale[i])
	}
	return nil
}

// TestX returns the deterministic probe vector for an n-dimensional check:
// mostly unit-scale noise, with exact zeros, an exactly-representable large
// value, and a denormal mixed in so kernels meet the full dynamic range on
// every case.
func TestX(n int, seed int64) []float64 {
	x := make([]float64, n)
	s := uint64(seed)*2862933555777941757 + 3037000493
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for i := range x {
		switch i % 7 {
		case 3:
			x[i] = 0
		case 5:
			x[i] = 1024 // exactly representable, no rounding of its own
		case 6:
			x[i] = 5e-310
		default:
			x[i] = float64(int64(next()%2048)-1024) / 1024
		}
	}
	return x
}
