package fuzzcheck

import (
	"math"
	"testing"

	symspmv "repro"
	"repro/internal/matrix"
)

// Tol is the differential tolerance: |y_i − ref_i| ≤ Tol·Σ_j|A_ij·x_j|.
const Tol = 1e-12

var allFormats = []symspmv.Format{
	symspmv.CSR, symspmv.CSX, symspmv.BCSR,
	symspmv.SSSNaive, symspmv.SSSEffective, symspmv.SSSIndexed,
	symspmv.SSSAtomic, symspmv.CSXSym, symspmv.CSB, symspmv.SSSColored,
}

// threadCounts deliberately exceeds every matrix dimension in the tiny
// cases: N < p is the whole point of several generators.
var threadCounts = []int{1, 2, 3, 4, 8, 16}

// buildMatrix routes the raw triplets through the public builder — the same
// duplicate-summing, normalizing path every library consumer takes.
func buildMatrix(t *testing.T, m *matrix.COO) *symspmv.Matrix {
	t.Helper()
	b := symspmv.NewBuilder(m.Rows)
	for k := range m.Val {
		b.Set(int(m.RowIdx[k]), int(m.ColIdx[k]), m.Val[k])
	}
	a, err := b.Build()
	if err != nil {
		t.Fatalf("building %dx%d matrix: %v", m.Rows, m.Rows, err)
	}
	return a
}

// TestDifferentialSuite is the tentpole check: every adversarial case ×
// every format × every thread count agrees with the serial dense reference.
// y is pre-filled with NaN before each multiply because MulVec's contract is
// y = A·x, not y += A·x — a kernel that reads stale output propagates the
// NaN and fails loudly.
func TestDifferentialSuite(t *testing.T) {
	for _, tc := range AdversarialSuite() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			a := buildMatrix(t, tc.M)
			n := tc.M.Rows
			x := TestX(n, int64(n)+7)
			ref, scale := Reference(tc.M, x)
			for _, f := range allFormats {
				for _, p := range threadCounts {
					k, err := a.Kernel(f, symspmv.Threads(p))
					if err != nil {
						t.Errorf("%v p=%d: Kernel: %v", f, p, err)
						continue
					}
					y := make([]float64, n)
					for rep := 0; rep < 2; rep++ {
						for i := range y {
							y[i] = math.NaN()
						}
						k.MulVec(x, y)
						if err := Compare(y, ref, scale, Tol); err != nil {
							t.Errorf("%v p=%d rep=%d: %v", f, p, rep, err)
							break
						}
					}
					k.Close()
				}
			}
		})
	}
}

// TestReferenceSelfConsistent pins the reference itself against the
// independent COO triplet kernel, so a bug in the dense expansion cannot
// silently weaken every other check.
func TestReferenceSelfConsistent(t *testing.T) {
	for _, tc := range AdversarialSuite() {
		n := tc.M.Rows
		x := TestX(n, 3)
		ref, scale := Reference(tc.M, x)
		y := make([]float64, n)
		tc.M.MulVec(x, y)
		if err := Compare(y, ref, scale, Tol); err != nil {
			t.Errorf("%s: COO kernel vs dense reference: %v", tc.Name, err)
		}
	}
}
