package fuzzcheck

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/csx"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// Native Go fuzz targets for the two parsers that consume untrusted bytes.
// `go test` runs the seed corpus (f.Add plus testdata/fuzz/) on every CI
// run; `make fuzz-smoke` additionally runs each target under the fuzzing
// engine for a short budget. The checked-in corpus files under
// testdata/fuzz/<Target>/ are the regression seeds: each one reproduced a
// pre-fix panic or mis-parse.

// FuzzReadMatrixMarket: never panic; an accepted parse must produce a valid
// COO that survives a write/reparse round trip bit-exactly.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n% c\n3 4 3\n1 1 2.5\n3 4 -1e3\n2 2 0.125\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 4\n2 1 -1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate integer symmetric\r\n2 2 1\r\n2 1 7\r\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n2 2 1\n2 2 1.0")) // no trailing newline
	f.Add([]byte("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 1.0\n2 2 2.0\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n92233720368547758080 2 1\n1 1 1.0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := matrix.ReadMatrixMarket(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted matrix fails Validate: %v", err)
		}
		var out bytes.Buffer
		if err := matrix.WriteMatrixMarket(&out, m); err != nil {
			t.Fatalf("writing accepted matrix: %v", err)
		}
		back, err := matrix.ReadMatrixMarket(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("reparsing own output: %v", err)
		}
		if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() || back.Symmetric != m.Symmetric {
			t.Fatalf("round trip changed shape: %dx%d nnz=%d sym=%v -> %dx%d nnz=%d sym=%v",
				m.Rows, m.Cols, m.NNZ(), m.Symmetric, back.Rows, back.Cols, back.NNZ(), back.Symmetric)
		}
		for k := range m.Val {
			if back.RowIdx[k] != m.RowIdx[k] || back.ColIdx[k] != m.ColIdx[k] {
				t.Fatalf("round trip moved entry %d", k)
			}
			// Bit equality (%.17g round-trips float64 exactly); NaN payloads
			// canonicalize on both parses, so bits match there too.
			if math.Float64bits(back.Val[k]) != math.Float64bits(m.Val[k]) {
				t.Fatalf("round trip changed value %d: %g -> %g", k, m.Val[k], back.Val[k])
			}
		}
	})
}

// FuzzDecodeBlob drives raw ctl bytes through the blob walker — the decoder
// the hot kernels mirror — bypassing the file container and its CRC.
// Properties: DecodeToCOO and ValidateSymBlob never panic, and anything
// DecodeToCOO accepts is a structurally valid COO.
func FuzzDecodeBlob(f *testing.F) {
	// Pre-fix crashers: truncated uvarint, oversized uvarint, unknown
	// pattern, truncated bodies, out-of-range coordinates.
	f.Add([]byte{0xc0, 0x01, 0x80, 0x80, 0x80, 0x80, 0x80}, uint16(1), uint16(8), false)
	f.Add([]byte{0xc0, 0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, uint16(1), uint16(8), false)
	f.Add([]byte{0xbf, 0x01, 0x00}, uint16(1), uint16(8), false)
	f.Add([]byte{0x81, 0x03, 0x00, 0x01}, uint16(3), uint16(8), false)
	f.Add([]byte{0x84, 0x03, 0x00}, uint16(3), uint16(2), true)
	f.Add([]byte{0x81, 0x01, 0x03}, uint16(1), uint16(4), true)
	// A legitimate stream: delta unit then a horizontal run on the next row.
	f.Add([]byte{0x81, 0x02, 0x00, 0x02, 0x85, 0x03, 0x01}, uint16(5), uint16(8), true)
	f.Fuzz(func(t *testing.T, ctl []byte, nvals, rows uint16, sym bool) {
		n := int(rows%512) + 1
		nv := int(nvals % 512)
		vals := make([]float64, nv)
		for i := range vals {
			vals[i] = 1.5
		}
		b := &csx.Blob{StartRow: 0, EndRow: int32(n), Ctl: ctl, Vals: vals, NNZ: nv}
		out, err := csx.DecodeToCOO(b, n, n, sym)
		if err == nil {
			if verr := out.Validate(); verr != nil {
				t.Fatalf("accepted blob decodes to invalid COO: %v", verr)
			}
		}
		// The kernel-invariant validator must reach a verdict without
		// panicking on arbitrary bytes, for any boundary.
		_ = csx.ValidateSymBlob(b, n, int32(n/2), nil)
		_ = csx.ValidateSymBlob(b, n, int32(n)+1, nil)
	})
}

// symBytes serializes a small CSX-Sym matrix, optionally corrupted in
// memory first — the resulting file always carries a valid CRC, so these
// inputs exercise the structural validation behind the checksum.
func symBytes(f *testing.F, method core.ReductionMethod, mutate func(sm *csx.SymMatrix)) []byte {
	m := matrix.NewCOO(24, 24, 24*3)
	m.Symmetric = true
	for r := 0; r < 24; r++ {
		m.Add(r, r, 6)
		for d := 1; d <= 2 && r-d >= 0; d++ {
			m.Add(r, r-d, -1)
		}
	}
	m.Normalize()
	s, err := core.FromCOO(m)
	if err != nil {
		f.Fatal(err)
	}
	sm := csx.NewSym(s, 2, method, csx.DefaultOptions())
	if mutate != nil {
		mutate(sm)
	}
	var buf bytes.Buffer
	if _, err := sm.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSymDeserialize: ReadSymMatrix never panics, and any matrix it accepts
// is safe to hand to the multiply kernels (whose own panics are builder
// invariants that validated input must never trip).
func FuzzSymDeserialize(f *testing.F) {
	clean := symBytes(f, core.Indexed, nil)
	f.Add(clean)
	f.Add(symBytes(f, core.Naive, nil))
	f.Add(symBytes(f, core.EffectiveRanges, nil))
	f.Add(symBytes(f, core.Indexed, func(sm *csx.SymMatrix) { sm.Blobs[1].Ctl[0] |= 0x3f }))
	f.Add(symBytes(f, core.Indexed, func(sm *csx.SymMatrix) { sm.Blobs[0].StartRow++ }))
	f.Add(clean[:len(clean)-5])
	f.Add(clean[:20])
	f.Fuzz(func(t *testing.T, data []byte) {
		sm, err := csx.ReadSymMatrix(bytes.NewReader(data))
		if err != nil {
			return
		}
		if sm.N > 1<<16 {
			// A structurally valid giant matrix (possible only with a
			// proportionally giant input) is not worth multiplying here.
			return
		}
		if _, err := csx.DecodeSymMatrix(sm); err != nil {
			t.Fatalf("accepted matrix fails to decode: %v", err)
		}
		x := make([]float64, sm.N)
		y := make([]float64, sm.N)
		for i := range x {
			x[i] = 1
		}
		pool := parallel.NewPool(len(sm.Blobs))
		defer pool.Close()
		sm.MulVec(pool, x, y)
	})
}
