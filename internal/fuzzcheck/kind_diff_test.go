package fuzzcheck

import (
	"bytes"
	"math"
	"testing"

	symspmv "repro"
	"repro/internal/matrix"
)

// kindFormats are the formats the skew/structural classes can run: the
// unsymmetric baselines (which expand to a full general matrix) and the
// kind-generalized SSS methods. CSX-Sym, CSB-Sym and the atomic ablation
// hard-code the symmetric transposed write and are gated off at the facade.
var kindFormats = []symspmv.Format{
	symspmv.CSR, symspmv.CSX, symspmv.BCSR,
	symspmv.SSSNaive, symspmv.SSSEffective, symspmv.SSSIndexed,
	symspmv.SSSColored,
}

// buildKindMatrix routes the case through the full ingestion path: Matrix
// Market serialization and back, then the facade reader's classification.
// That makes the differential check cover the skew header round-trip and the
// structural pattern detection, not just the kernels.
func buildKindMatrix(t *testing.T, m *matrix.COO, wantClass string) *symspmv.Matrix {
	t.Helper()
	var buf bytes.Buffer
	if err := matrix.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatalf("serializing case: %v", err)
	}
	a, err := symspmv.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatalf("reading case back: %v", err)
	}
	if got := a.SymmetryClass(); got != wantClass {
		t.Fatalf("classified %q, want %q", got, wantClass)
	}
	return a
}

// TestKindDifferentialSuite is the skew/structural analog of
// TestDifferentialSuite: every KindSuite case × every kind-capable format ×
// every thread count agrees with the serial dense reference (which mirrors
// −v for skew input and takes general input as stored). y is pre-filled with
// NaN before each multiply, and each kernel runs twice to catch stale
// per-call state.
func TestKindDifferentialSuite(t *testing.T) {
	for _, tc := range KindSuite() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			wantClass := "skew-symmetric"
			if !tc.M.Symmetric {
				wantClass = "structurally-symmetric"
			}
			a := buildKindMatrix(t, tc.M, wantClass)
			n := tc.M.Rows
			x := TestX(n, int64(n)+13)
			ref, scale := Reference(tc.M, x)
			for _, f := range kindFormats {
				for _, p := range threadCounts {
					k, err := a.Kernel(f, symspmv.Threads(p))
					if err != nil {
						t.Errorf("%v p=%d: Kernel: %v", f, p, err)
						continue
					}
					y := make([]float64, n)
					for rep := 0; rep < 2; rep++ {
						for i := range y {
							y[i] = math.NaN()
						}
						k.MulVec(x, y)
						if err := Compare(y, ref, scale, Tol); err != nil {
							t.Errorf("%v p=%d rep=%d: %v", f, p, rep, err)
							break
						}
					}
					k.Close()
				}
			}
		})
	}
}

// TestKindReferenceSelfConsistent pins the skew-aware dense reference
// against the independent COO triplet kernel, exactly as
// TestReferenceSelfConsistent does for the symmetric suite.
func TestKindReferenceSelfConsistent(t *testing.T) {
	for _, tc := range KindSuite() {
		n := tc.M.Rows
		x := TestX(n, 5)
		ref, scale := Reference(tc.M, x)
		y := make([]float64, n)
		tc.M.MulVec(x, y)
		if err := Compare(y, ref, scale, Tol); err != nil {
			t.Errorf("%s: COO kernel vs dense reference: %v", tc.Name, err)
		}
	}
}
