// Command gencorpus regenerates the binary regression corpus for
// FuzzSymDeserialize under internal/fuzzcheck/testdata/fuzz/. The seeds are
// real CSX-Sym serializations — clean ones for each reduction method, plus
// corrupt-in-memory variants whose trailing CRC is still valid, so they reach
// the structural validator rather than the checksum check. Run it from the
// repository root after changing the serialization format:
//
//	go run ./internal/fuzzcheck/gencorpus
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/core"
	"repro/internal/csx"
	"repro/internal/matrix"
)

func symBytes(method core.ReductionMethod, mutate func(sm *csx.SymMatrix)) []byte {
	m := matrix.NewCOO(24, 24, 24*3)
	m.Symmetric = true
	for r := 0; r < 24; r++ {
		m.Add(r, r, 6)
		for d := 1; d <= 2 && r-d >= 0; d++ {
			m.Add(r, r-d, -1)
		}
	}
	m.Normalize()
	s, err := core.FromCOO(m)
	if err != nil {
		log.Fatal(err)
	}
	sm := csx.NewSym(s, 2, method, csx.DefaultOptions())
	if mutate != nil {
		mutate(sm)
	}
	var buf bytes.Buffer
	if _, err := sm.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

func main() {
	dir := filepath.Join("internal", "fuzzcheck", "testdata", "fuzz", "FuzzSymDeserialize")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	clean := symBytes(core.Indexed, nil)
	seeds := map[string][]byte{
		"valid-indexed":        clean,
		"valid-naive":          symBytes(core.Naive, nil),
		"valid-effective":      symBytes(core.EffectiveRanges, nil),
		"corrupt-unknown-unit": symBytes(core.Indexed, func(sm *csx.SymMatrix) { sm.Blobs[1].Ctl[0] |= 0x3f }),
		"corrupt-blob-rows":    symBytes(core.Indexed, func(sm *csx.SymMatrix) { sm.Blobs[0].StartRow++ }),
		"corrupt-method":       symBytes(core.Indexed, func(sm *csx.SymMatrix) { sm.Method = core.Atomic }),
		"truncated-tail":       clean[:len(clean)-5],
		"truncated-header":     clean[:20],
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
}
