// Package fuzzcheck is the library's differential property-testing
// subsystem: it generates adversarial symmetric matrices — the degenerate
// shapes a production service sees long before it sees a well-behaved PDE
// discretization — and cross-checks every storage format, reduction method,
// and thread count against a trusted serial dense reference. The package
// also hosts the native Go fuzz targets for the two untrusted-bytes parsers
// (Matrix Market and the CSX-Sym blob deserializer) with their regression
// corpus under testdata/fuzz/.
package fuzzcheck

import (
	"math"
	"math/rand"

	"repro/internal/matrix"
)

// Case is one adversarial matrix with a descriptive name.
type Case struct {
	Name string
	M    *matrix.COO // symmetric, lower triangle, possibly with duplicates
}

// AdversarialSuite returns the deterministic generator taxonomy. Every shape
// here exists because some kernel layer is sensitive to it:
//
//   - empty / 1×1 matrices: loop bounds and partition construction,
//   - N smaller than any realistic thread count: empty chunks, zero-length
//     local vectors, reduction phases with nothing to reduce,
//   - empty rows (including empty diagonal): skipped rows in SSS, zero-row
//     chunks in ByNNZ,
//   - a single dense row (= dense column, by symmetry): one thread owns
//     nearly all nonzeros, local vectors cover the whole prefix,
//   - extreme bandwidth: entries at (r, 0) stress the reduction index and
//     CSB's atomic fallback,
//   - duplicate COO entries, partially cancelling: Normalize's summing and
//     the builders' tolerance of them,
//   - denormal and huge values: tolerance modelling and non-finite guards,
//   - explicit zero values: structural nonzeros the formats must carry,
//   - banded runs and dense blocks: CSX's Horizontal/Diagonal/Block pattern
//     detection on inputs where units touch partition boundaries.
func AdversarialSuite() []Case {
	var cases []Case
	add := func(name string, m *matrix.COO) {
		cases = append(cases, Case{Name: name, M: m})
	}

	add("empty-0x0", sym(0, 0))

	m := sym(1, 1)
	m.Add(0, 0, 3)
	add("single-1x1", m)

	add("single-1x1-no-entries", sym(1, 0))

	m = sym(64, 64)
	for r := 0; r < 64; r++ {
		m.Add(r, r, float64(r+1))
	}
	add("diag-only-64", m)

	// Rows 10–20 and 50–96 carry nothing at all, not even a diagonal.
	m = sym(97, 200)
	rng := rand.New(rand.NewSource(101))
	for r := 0; r < 97; r++ {
		if (r >= 10 && r <= 20) || r >= 50 {
			continue
		}
		m.Add(r, r, 4)
		for k := 0; k < 2 && r > 0; k++ {
			m.Add(r, rng.Intn(r), rng.NormFloat64())
		}
	}
	add("empty-rows-97", m)

	// Row 100 is dense in columns 0..99; by symmetry that is also a dense
	// column 100 in the implicit upper half.
	m = sym(128, 300)
	for r := 0; r < 128; r++ {
		m.Add(r, r, 130)
	}
	for c := 0; c < 100; c++ {
		m.Add(100, c, 1)
	}
	add("dense-row-128", m)

	// Tiny matrices, each smaller than the largest thread count the
	// differential suite runs with.
	for _, n := range []int{2, 3, 5, 7} {
		rng := rand.New(rand.NewSource(int64(200 + n)))
		m = sym(n, n*3)
		for r := 0; r < n; r++ {
			m.Add(r, r, float64(n)+1)
			for c := 0; c < r; c++ {
				if rng.Intn(2) == 0 {
					m.Add(r, c, rng.NormFloat64())
				}
			}
		}
		add("tiny-"+itoa(n), m)
	}

	// Duplicate entries: every off-diagonal added twice with values that
	// partially cancel, plus a triple-added diagonal.
	m = sym(50, 300)
	rng = rand.New(rand.NewSource(303))
	for r := 0; r < 50; r++ {
		m.Add(r, r, 10)
		m.Add(r, r, -2)
		m.Add(r, r, 0.5)
		for k := 0; k < 2 && r > 0; k++ {
			c := rng.Intn(r)
			v := rng.NormFloat64()
			m.Add(r, c, v)
			m.Add(r, c, -v/2)
		}
	}
	add("dup-entries-50", m)

	// Extreme bandwidth: a full first column (every row reaches back to
	// column 0) and the far corner.
	m = sym(200, 500)
	for r := 0; r < 200; r++ {
		m.Add(r, r, 300)
		if r > 0 {
			m.Add(r, 0, 1)
		}
	}
	m.Add(199, 0, 0.25) // duplicate of the corner entry
	add("extreme-bandwidth-200", m)

	// Denormal values: products and sums hover around 1e-320, where float64
	// has only a few bits of precision left.
	m = sym(64, 300)
	rng = rand.New(rand.NewSource(404))
	den := []float64{5e-324, 1e-310, 3e-308, -2e-320}
	for r := 0; r < 64; r++ {
		m.Add(r, r, den[r%len(den)])
		for k := 0; k < 2 && r > 0; k++ {
			m.Add(r, rng.Intn(r), den[rng.Intn(len(den))])
		}
	}
	add("denormal-64", m)

	// Huge values mixed with tiny ones: exercises the Σ|v·x| tolerance
	// scaling (absolute 1e-12 would be absurd at 1e150).
	m = sym(64, 300)
	rng = rand.New(rand.NewSource(505))
	big := []float64{1e150, -1e150, 1e140, 1e-150}
	for r := 0; r < 64; r++ {
		m.Add(r, r, 1e150)
		for k := 0; k < 2 && r > 0; k++ {
			m.Add(r, rng.Intn(r), big[rng.Intn(len(big))])
		}
	}
	add("huge-64", m)

	// Explicit zero values: structurally present, numerically nothing.
	m = sym(40, 160)
	rng = rand.New(rand.NewSource(606))
	for r := 0; r < 40; r++ {
		m.Add(r, r, 2)
		if r > 0 {
			m.Add(r, rng.Intn(r), 0)
		}
	}
	add("zero-values-40", m)

	// Banded with long horizontal runs: CSX detects Horizontal/Delta units
	// that end exactly at partition boundaries for some thread counts.
	m = sym(160, 160*10)
	rng = rand.New(rand.NewSource(707))
	for r := 0; r < 160; r++ {
		m.Add(r, r, 20)
		if r >= 8 {
			for c := r - 8; c < r; c++ {
				m.Add(r, c, 1+rng.Float64())
			}
		}
	}
	add("banded-runs-160", m)

	// Dense 3×3 blocks scattered below the diagonal (Block3 units).
	m = sym(96, 96*12)
	rng = rand.New(rand.NewSource(808))
	for r := 0; r < 96; r++ {
		m.Add(r, r, 40)
	}
	for b := 0; b < 12; b++ {
		r0 := 6 + rng.Intn(88)
		c0 := rng.Intn(r0 - 3)
		for dr := 0; dr < 3; dr++ {
			for dc := 0; dc < 3; dc++ {
				m.Add(r0+dr, c0+dc, rng.NormFloat64())
			}
		}
	}
	add("blocked-96", m)

	// The last row holds every off-diagonal entry; every other row is empty
	// (no diagonal either). With p > 4 threads most chunks are empty and the
	// last chunk owns everything.
	m = sym(33, 40)
	for c := 0; c < 32; c++ {
		m.Add(32, c, float64(c%5)-2)
	}
	add("all-in-last-row-33", m)

	// Hub columns: columns 0–2 are touched by nearly every row, the access
	// pattern the hub-cached kernels remap into private hot-x windows. The
	// skew is strong enough that a forced hub analysis always engages.
	m = sym(120, 120*5)
	rng = rand.New(rand.NewSource(1010))
	for r := 0; r < 120; r++ {
		m.Add(r, r, 500)
		for h := 0; h < 3 && h < r; h++ {
			m.Add(r, h, rng.NormFloat64())
		}
		if r > 4 {
			m.Add(r, 3+rng.Intn(r-3), rng.NormFloat64())
		}
	}
	add("hub-cols-120", m)

	// A diagonally dominant random matrix: the well-behaved control case.
	m = sym(150, 150*5)
	rng = rand.New(rand.NewSource(909))
	rowAbs := make([]float64, 150)
	for r := 1; r < 150; r++ {
		for k := 0; k < 4; k++ {
			c := rng.Intn(r)
			v := rng.NormFloat64()
			m.Add(r, c, v)
			rowAbs[r] += math.Abs(v)
			rowAbs[c] += math.Abs(v)
		}
	}
	for r := 0; r < 150; r++ {
		m.Add(r, r, rowAbs[r]+1)
	}
	add("random-spd-150", m)

	return cases
}

// KindSuite returns the adversarial taxonomy for the non-symmetric kinds:
// skew-symmetric matrices (Symmetric+Skew lower storage) and structurally
// symmetric ones (general storage, mirrored pattern, unmirrored values).
// The shapes mirror AdversarialSuite's sensitivities — tiny N below the
// thread counts, empty rows, extreme bandwidth, explicit zeros (for skew:
// explicit zero diagonal entries, the one diagonal a skew file may carry),
// and denormal/huge value mixes — because the kind-generalized kernel bodies
// share the symmetric bodies' partition and reduction machinery.
func KindSuite() []Case {
	var cases []Case
	add := func(name string, m *matrix.COO) {
		cases = append(cases, Case{Name: name, M: m})
	}

	// Tiny skew matrices, smaller than the largest thread count.
	for _, n := range []int{2, 3, 5, 7} {
		rng := rand.New(rand.NewSource(int64(1200 + n)))
		m := skew(n, n*3)
		for r := 1; r < n; r++ {
			for c := 0; c < r; c++ {
				if rng.Intn(2) == 0 {
					m.Add(r, c, rng.NormFloat64())
				}
			}
		}
		add("skew-tiny-"+itoa(n), m)
	}

	// Explicit zero diagonal entries: the only diagonal a skew matrix may
	// store. The ingestion path must accept them and the kernels must still
	// write y[r] = 0 rather than read a diagonal that is not there.
	m := skew(40, 160)
	rng := rand.New(rand.NewSource(1301))
	for r := 0; r < 40; r++ {
		m.Add(r, r, 0)
		if r > 0 {
			m.Add(r, rng.Intn(r), rng.NormFloat64())
		}
	}
	add("skew-zero-diag-40", m)

	// Empty rows (no entries at all) between populated bands.
	m = skew(97, 200)
	rng = rand.New(rand.NewSource(1401))
	for r := 1; r < 97; r++ {
		if (r >= 10 && r <= 20) || r >= 50 {
			continue
		}
		for k := 0; k < 2; k++ {
			m.Add(r, rng.Intn(r), rng.NormFloat64())
		}
	}
	add("skew-empty-rows-97", m)

	// Extreme bandwidth: every row reaches back to column 0, with a
	// partially cancelling duplicate in the far corner.
	m = skew(200, 240)
	for r := 1; r < 200; r++ {
		m.Add(r, 0, 1)
	}
	m.Add(199, 0, -0.25)
	add("skew-extreme-bandwidth-200", m)

	// Denormals and huge values: the transposed −v stream must keep the
	// same magnitude account as the symmetric +v one.
	m = skew(64, 300)
	rng = rand.New(rand.NewSource(1501))
	vals := []float64{5e-324, 1e-310, 1e150, -1e150, 1e-150}
	for r := 1; r < 64; r++ {
		for k := 0; k < 2; k++ {
			m.Add(r, rng.Intn(r), vals[rng.Intn(len(vals))])
		}
	}
	add("skew-mixed-magnitude-64", m)

	// Tiny structural matrices.
	for _, n := range []int{2, 3, 5, 7} {
		rng := rand.New(rand.NewSource(int64(1600 + n)))
		m := general(n, n*4)
		for r := 0; r < n; r++ {
			m.Add(r, r, float64(n)+1)
		}
		for r := 1; r < n; r++ {
			for c := 0; c < r; c++ {
				if rng.Intn(2) == 0 {
					m.Add(r, c, rng.NormFloat64())
					m.Add(c, r, rng.NormFloat64())
				}
			}
		}
		add("structural-tiny-"+itoa(n), m)
	}

	// Structural with empty rows and a partial diagonal: rows 30–60 hold
	// nothing, several diagonal slots are absent.
	m = general(97, 300)
	rng = rand.New(rand.NewSource(1701))
	for r := 0; r < 97; r++ {
		if r >= 30 && r <= 60 {
			continue
		}
		if r%3 != 0 {
			m.Add(r, r, 5)
		}
		if r > 0 && r < 30 {
			c := rng.Intn(r)
			m.Add(r, c, rng.NormFloat64())
			m.Add(c, r, rng.NormFloat64())
		}
	}
	add("structural-empty-rows-97", m)

	// Structural banded: long mirrored runs with independent values per
	// triangle, plus explicit zeros on one side only (the pattern mirrors,
	// the values need not).
	m = general(160, 160*8)
	rng = rand.New(rand.NewSource(1801))
	for r := 0; r < 160; r++ {
		m.Add(r, r, 20)
		for d := 1; d <= 4 && r-d >= 0; d++ {
			lo := rng.NormFloat64()
			if d == 3 {
				lo = 0 // explicit zero below, nonzero mirror above
			}
			m.Add(r, r-d, lo)
			m.Add(r-d, r, 1+rng.Float64())
		}
	}
	add("structural-banded-160", m)

	// Structural hub: columns 0–2 are touched by nearly every row in both
	// triangles — the degree-skew shape, minus the hub option (which the
	// kinds reject).
	m = general(120, 120*7)
	rng = rand.New(rand.NewSource(1901))
	for r := 0; r < 120; r++ {
		m.Add(r, r, 500)
		for h := 0; h < 3 && h < r; h++ {
			m.Add(r, h, rng.NormFloat64())
			m.Add(h, r, rng.NormFloat64())
		}
	}
	add("structural-hub-120", m)

	for _, c := range cases {
		c.M.Normalize()
	}
	return cases
}

func sym(n, nnzHint int) *matrix.COO {
	m := matrix.NewCOO(n, n, nnzHint)
	m.Symmetric = true
	return m
}

func skew(n, nnzHint int) *matrix.COO {
	m := sym(n, nnzHint)
	m.Skew = true
	return m
}

func general(n, nnzHint int) *matrix.COO {
	return matrix.NewCOO(n, n, nnzHint)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
