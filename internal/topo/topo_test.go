package topo

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDetectDirSynthetic(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"node0", "node1", "node12", "cpumap", "nodelist", "nodeX"} {
		if err := os.Mkdir(filepath.Join(dir, name), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if got := DetectDir(dir); got != 3 {
		t.Fatalf("DetectDir = %d, want 3 (node0, node1, node12)", got)
	}
}

func TestDetectDirFallback(t *testing.T) {
	if got := DetectDir(filepath.Join(t.TempDir(), "missing")); got != 1 {
		t.Fatalf("missing dir: DetectDir = %d, want 1", got)
	}
	if got := DetectDir(t.TempDir()); got != 1 {
		t.Fatalf("empty dir: DetectDir = %d, want 1", got)
	}
}

func TestOverride(t *testing.T) {
	prev := Override(4)
	defer Override(prev)
	if got := Domains(); got != 4 {
		t.Fatalf("Domains under Override(4) = %d", got)
	}
	Override(0)
	if got := Domains(); got < 1 {
		t.Fatalf("Domains after clearing override = %d, want >= 1", got)
	}
}

func TestDomainsDeterministic(t *testing.T) {
	prev := Override(0)
	defer Override(prev)
	a, b := Domains(), Domains()
	if a != b || a < 1 {
		t.Fatalf("Domains not deterministic or invalid: %d, %d", a, b)
	}
}
