// Package topo detects the machine's NUMA topology — the number of memory
// domains the execution engine shards work across.
//
// Detection reads the Linux sysfs tree (/sys/devices/system/node): one
// "nodeN" directory per online NUMA node. On machines without the tree
// (non-Linux, containers with masked sysfs) detection deterministically
// falls back to a single domain, which collapses every domain-aware code
// path to the existing flat behaviour. Tests and pinned runs inject
// synthetic topologies with Override or point DetectDir at a fabricated
// tree; they never need a real multi-socket host.
package topo

import (
	"os"
	"strconv"
	"strings"
	"sync"
)

// nodeDir is the sysfs directory enumerating NUMA nodes.
const nodeDir = "/sys/devices/system/node"

var (
	mu         sync.Mutex
	overridden int  // > 0: synthetic topology in force
	detected   int  // cached sysfs answer
	haveDetect bool // detected is valid
)

// Domains reports the number of NUMA domains: the Override value when a
// synthetic topology is in force, otherwise the sysfs detection result
// (cached after the first call), otherwise 1.
func Domains() int {
	mu.Lock()
	defer mu.Unlock()
	if overridden > 0 {
		return overridden
	}
	if !haveDetect {
		detected = DetectDir(nodeDir)
		haveDetect = true
	}
	return detected
}

// Override forces Domains to report d — the synthetic-topology hook for
// tests and for pinned runs on machines where sysfs lies (VMs, cgroup
// carve-outs). d <= 0 removes the override and restores detection. The
// previous override value is returned so tests can restore it.
func Override(d int) (prev int) {
	mu.Lock()
	defer mu.Unlock()
	prev = overridden
	if d <= 0 {
		overridden = 0
	} else {
		overridden = d
	}
	return prev
}

// DetectDir counts the "nodeN" entries under dir, the sysfs NUMA node
// enumeration. Any read error or an empty enumeration yields the
// deterministic single-domain fallback.
func DetectDir(dir string) int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 1
	}
	count := 0
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "node") {
			continue
		}
		if _, err := strconv.Atoi(name[len("node"):]); err == nil {
			count++
		}
	}
	if count < 1 {
		return 1
	}
	return count
}
