package attrib

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stream"
)

// smallCalibration shrinks the STREAM arrays so a test bind measures in
// microseconds instead of hundreds of milliseconds, restoring the defaults
// (and clearing the memoized results, which were measured at test size)
// afterwards.
func smallCalibration(t *testing.T) {
	t.Helper()
	size, reps := CalibrationSize, CalibrationReps
	CalibrationSize = 1 << 14
	CalibrationReps = 1
	t.Cleanup(func() {
		CalibrationSize, CalibrationReps = size, reps
		calMu.Lock()
		calCache = map[calKey][]stream.DomainResult{}
		calMu.Unlock()
	})
}

// testKernel builds a deterministic pentadiagonal symmetric kernel.
func testKernel(t *testing.T, method core.ReductionMethod, threads int) (*core.Kernel, *parallel.Pool) {
	t.Helper()
	const n = 3000
	m := matrix.NewCOO(n, n, 3*n)
	m.Symmetric = true
	for i := 0; i < n; i++ {
		m.Add(i, i, 4)
		if i >= 1 {
			m.Add(i, i-1, -1)
		}
		if i >= 40 {
			m.Add(i, i-40, -0.5)
		}
	}
	s, err := core.FromCOO(m)
	if err != nil {
		t.Fatal(err)
	}
	pool := parallel.NewPool(threads)
	t.Cleanup(pool.Close)
	return core.NewKernel(s, method, pool), pool
}

// TestAttributionExposition drives sampled operations through a bound engine
// and checks the full export surface: Prometheus family names, labels and
// HELP text; the JSON snapshot's entries; and the /debug/attrib registration.
func TestAttributionExposition(t *testing.T) {
	smallCalibration(t)
	k, _ := testKernel(t, core.EffectiveRanges, 2)
	obs.SetSampling(true)
	t.Cleanup(func() { obs.SetSampling(false) })

	if err := Default.Bind(k); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, k.S.N)
	y := make([]float64, k.S.N)
	for i := range x {
		x[i] = 1 + float64(i%7)
	}
	for i := 0; i < 4; i++ {
		k.MulVec(x, y)
	}

	var sb strings.Builder
	if err := obs.Default.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# HELP symspmv_attrib_achieved_gbps ",
		"# TYPE symspmv_attrib_achieved_gbps gauge",
		"# TYPE symspmv_attrib_roofline_fraction gauge",
		"# TYPE symspmv_attrib_model_error gauge",
		"# TYPE symspmv_attrib_stream_gbps gauge",
		"# TYPE symspmv_attrib_fraction histogram",
		`symspmv_attrib_achieved_gbps{method="effective-ranges",phase="compute",domain="all"}`,
		`symspmv_attrib_roofline_fraction{method="effective-ranges",phase="reduction",domain="all"}`,
		`symspmv_attrib_stream_gbps{domain="0"}`,
		`symspmv_attrib_fraction_bucket{method="effective-ranges",phase="compute",le="1.5"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus exposition missing %q", want)
		}
	}

	snap := Default.Snapshot()
	if len(snap.Stream) == 0 {
		t.Fatal("snapshot has no stream calibration")
	}
	found := 0
	for _, e := range snap.Entries {
		if e.Method != "effective-ranges" {
			continue
		}
		found++
		if e.Ops < 4 {
			t.Errorf("%s/%s/%s: ops = %d, want >= 4", e.Method, e.Phase, e.Domain, e.Ops)
		}
		if e.AchievedGBs <= 0 || e.MeasuredUsPerOp <= 0 || e.PredictedBytesPerOp <= 0 {
			t.Errorf("%s/%s/%s: non-positive rates: %+v", e.Method, e.Phase, e.Domain, e)
		}
		if e.RooflineFraction <= 0 {
			t.Errorf("%s/%s/%s: roofline fraction %v, want > 0", e.Method, e.Phase, e.Domain, e.RooflineFraction)
		}
		if e.ModelError <= 0 {
			t.Errorf("%s/%s/%s: model error %v, want > 0", e.Method, e.Phase, e.Domain, e.ModelError)
		}
	}
	if found < 2 {
		t.Fatalf("snapshot has %d effective-ranges entries, want compute and reduction", found)
	}

	// The engine is mounted as a debug endpoint and serves its snapshot.
	if _, ok := obs.DebugHandlers()["/debug/attrib"]; !ok {
		t.Fatal("/debug/attrib not registered")
	}
	rec := httptest.NewRecorder()
	Default.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/attrib", nil))
	var decoded Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("/debug/attrib is not JSON: %v", err)
	}
	if len(decoded.Entries) == 0 {
		t.Fatal("/debug/attrib served no entries")
	}
}

// TestAttributionSkipsEmptyPhases: methods without a phase (colored has no
// reduction) must not grow zero-rate attribution streams.
func TestAttributionSkipsEmptyPhases(t *testing.T) {
	smallCalibration(t)
	eng := newEngine()
	k, _ := testKernel(t, core.Colored, 2)
	obs.SetSampling(true)
	t.Cleanup(func() { obs.SetSampling(false) })
	if err := eng.Bind(k); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, k.S.N)
	y := make([]float64, k.S.N)
	for i := range x {
		x[i] = 1
	}
	for i := 0; i < 3; i++ {
		k.MulVec(x, y)
	}
	for _, e := range eng.Snapshot().Entries {
		if e.Phase == "reduction" {
			t.Fatalf("colored kernel grew a reduction stream: %+v", e)
		}
	}
}

// TestCalibrateMemoizes: same pool shape, one measurement.
func TestCalibrateMemoizes(t *testing.T) {
	smallCalibration(t)
	pool := parallel.NewPool(2)
	defer pool.Close()
	a := Calibrate(pool)
	b := Calibrate(pool)
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("Calibrate did not memoize per pool shape")
	}
}
