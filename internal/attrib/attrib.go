// Package attrib is the roofline attribution engine: it joins the measured
// per-phase times of every sampled kernel operation (core.PhaseSample) with
// the perfmodel-predicted traffic of that kernel and the machine's measured
// STREAM bandwidth, and answers — live — "is this run at roofline, and if
// not, which phase and which domain is off?".
//
// Three numbers per (method, phase, domain):
//
//	achieved GB/s     = predicted phase bytes / measured phase seconds
//	roofline fraction = achieved GB/s / measured STREAM triad GB/s
//	model error       = measured seconds / model-predicted seconds
//
// The achieved rate uses the *predicted* byte count as numerator — the bytes
// the data structures make necessary — so a fraction near 1 means the kernel
// streams its necessary bytes at the speed the machine can stream at all,
// the Schubert/Hager/Fehske criterion for "as fast as the hardware allows".
// Fractions above 1 mean the working set fit in cache and the run beat the
// memory roofline (see DESIGN.md §15 for this and other blind spots).
//
// The model error divides by an independent prediction — a CalibratedHost
// platform whose phase times carry flop and barrier terms — so it is a
// separate diagnostic from the roofline fraction, not its reciprocal.
//
// Results are exported three ways: Prometheus gauges/histograms on the
// default obs registry, the /debug/attrib JSON snapshot (handler.go), and a
// coordinator-lane span in the Chrome trace annotating each sampled
// operation with its roofline percentage.
package attrib

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/stream"
)

// FractionBuckets are the roofline-fraction histogram bounds: 10% steps to
// 150%, beyond which a sample lands in the overflow (cache-resident) bucket.
var FractionBuckets = []float64{
	0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4, 1.5,
}

// DomainAll labels the whole-machine aggregate entries; per-domain entries of
// hierarchical kernels use the numeric domain instead.
const DomainAll = "all"

// entryKey identifies one attribution stream.
type entryKey struct {
	Method string
	Phase  string // "compute" or "reduction"
	Domain string // DomainAll or "0".."D-1"
}

// entry accumulates one attribution stream. Rates are ratios of sums, so
// they stay well-defined as samples from operations of different sizes (and
// different kernels of the same method) accumulate.
type entry struct {
	ops          int64
	sumBytes     float64 // predicted bytes over all sampled ops
	sumMeasNs    float64
	sumModelNs   float64
	rooflineGBs  float64
	achieved     *obs.Gauge
	fraction     *obs.Gauge
	modelError   *obs.Gauge
	fractionHist *obs.Histogram // aggregate entries only
}

// Engine is the attribution accumulator. One process-wide instance (Default)
// backs the metrics and the /debug/attrib endpoint; kernels feed it through
// Bind.
type Engine struct {
	mu      sync.Mutex
	entries map[entryKey]*entry
	order   []entryKey // insertion order, for a stable snapshot

	// Interned trace names: "attrib/<method> <bin>% of roofline". Bounded:
	// methods × (16 bins + 1 overflow).
	traceNames map[string]obs.NameID
	argName    obs.NameID
}

func newEngine() *Engine {
	return &Engine{
		entries:    map[entryKey]*entry{},
		traceNames: map[string]obs.NameID{},
		argName:    obs.RegisterName("roofline_pct"),
	}
}

// Default is the process-wide attribution engine.
var Default = newEngine()

// binding joins one kernel to the engine: its predicted cost, the pool
// shape, the calibrated bandwidths, and the per-domain byte split.
type binding struct {
	eng    *Engine
	method string
	p, d   int
	cost   perfmodel.SpMVCost
	pl     perfmodel.Platform // CalibratedHost, the independent model
	shares []float64          // per-domain nnz fraction; nil when flat
	calib  []stream.DomainResult
	allGBs float64 // sum of per-domain triads: the machine roofline
	nBytes int64   // 8·n, one full-vector stream
}

// Bind attaches the default engine to a kernel: computes the kernel's
// predicted traffic, calibrates (or reuses) the pool's STREAM bandwidth, and
// installs the sample hook so every sampled operation feeds the attribution
// streams. Call after kernel construction, before serving operations; the
// hook itself never measures bandwidth. The disabled-sampling hot path never
// reaches the hook, so binding costs nothing when sampling is off.
func Bind(k *core.Kernel) error {
	return Default.Bind(k)
}

// Bind is the method form of the package-level Bind.
func (e *Engine) Bind(k *core.Kernel) error {
	pool := k.Pool()
	if pool == nil {
		return fmt.Errorf("attrib: kernel has no pool")
	}
	calib := Calibrate(pool)
	b := &binding{
		eng:    e,
		method: k.Method.String(),
		p:      pool.Size(),
		d:      pool.Domains(),
		cost:   perfmodel.SSSCost(k),
		shares: k.DomainShares(),
		calib:  calib,
		allGBs: stream.GB(stream.TriadSum(calib)),
		nBytes: int64(8 * k.S.N),
	}
	domGBs := b.allGBs / float64(len(calib))
	b.pl = perfmodel.CalibratedHost(b.p, b.d, domGBs)
	k.SetSampleHook(b.observe)
	return nil
}

// observe is the sample hook: one sampled operation in, attribution streams
// updated. Runs on the coordinating goroutine after the workers have parked.
func (b *binding) observe(s core.PhaseSample) {
	c := b.cost
	if s.Op == core.OpSpMM {
		c = c.SpMM(s.NV)
	}
	computeBytes, redBytes := c.MultBytes, c.RedBytes
	if s.Op == core.OpSpMVDot {
		// The fused inner product adds vector traffic the plain SpMV cost
		// does not carry: Indexed and Colored run a trailing full sweep
		// reading x and y (compute work), the other methods fold the dot
		// into the reduction, which then reads x alongside the y stream it
		// already touches.
		switch b.method {
		case core.Indexed.String(), core.Colored.String():
			computeBytes += 2 * b.nBytes
		default:
			redBytes += b.nBytes
		}
	}
	modelMultNs := c.MultSeconds(b.pl, b.p) * 1e9
	modelRedNs := c.RedSeconds(b.pl, b.p) * 1e9

	e := b.eng
	e.mu.Lock()
	e.observeLocked(b.method, "compute", DomainAll, b.allGBs,
		float64(computeBytes), float64(s.PT.Compute.Nanoseconds()), modelMultNs)
	e.observeLocked(b.method, "reduction", DomainAll, b.allGBs,
		float64(redBytes), float64(s.PT.Reduction.Nanoseconds()), modelRedNs)
	for dd := range s.DomComputeNs {
		share := 0.0
		if b.shares != nil && dd < len(b.shares) {
			share = b.shares[dd]
		}
		gbs := stream.GB(b.calib[dd].Triad)
		dom := fmt.Sprintf("%d", dd)
		e.observeLocked(b.method, "compute", dom, gbs,
			share*float64(computeBytes), float64(s.DomComputeNs[dd]), share*modelMultNs)
		e.observeLocked(b.method, "reduction", dom, gbs,
			share*float64(redBytes), float64(s.DomReductionNs[dd]), share*modelRedNs)
	}
	frac := 0.0
	if wallNs := float64(s.EndNs - s.StartNs); wallNs > 0 && b.allGBs > 0 {
		frac = (float64(computeBytes+redBytes) / wallNs) / b.allGBs
	}
	name := e.traceNameLocked(b.method, frac)
	arg := e.argName
	e.mu.Unlock()

	if obs.TracingEnabled() {
		obs.TraceSpanArg(obs.LaneCoordinator, name, s.StartNs, s.EndNs,
			arg, int64(frac*100+0.5))
	}
}

// observeLocked folds one phase measurement into its attribution stream and
// refreshes the exported gauges. Zero-byte phases (e.g. the colored method's
// nonexistent reduction, or a single-thread Indexed kernel whose conflict
// index is empty) and unmeasured phases are skipped — a rate with a zero
// numerator or denominator attributes nothing.
func (e *Engine) observeLocked(method, phase, domain string, rooflineGBs, bytes, measNs, modelNs float64) {
	if bytes <= 0 || measNs <= 0 {
		return
	}
	key := entryKey{Method: method, Phase: phase, Domain: domain}
	en := e.entries[key]
	if en == nil {
		en = &entry{
			rooflineGBs: rooflineGBs,
			achieved: obs.NewGauge("symspmv_attrib_achieved_gbps",
				"Achieved bandwidth of one kernel phase: perfmodel-predicted bytes over measured critical-path seconds (GB/s).",
				"method", method, "phase", phase, "domain", domain),
			fraction: obs.NewGauge("symspmv_attrib_roofline_fraction",
				"Achieved bandwidth as a fraction of the measured STREAM triad roofline; ~1 is the hardware limit, >1 means cache-resident.",
				"method", method, "phase", phase, "domain", domain),
			modelError: obs.NewGauge("symspmv_attrib_model_error",
				"Measured over model-predicted phase seconds (calibrated-host perfmodel); 1 is a perfect prediction.",
				"method", method, "phase", phase, "domain", domain),
		}
		if domain == DomainAll {
			en.fractionHist = obs.NewHistogram("symspmv_attrib_fraction",
				"Per-operation roofline fraction of one kernel phase.",
				FractionBuckets, "method", method, "phase", phase)
		}
		e.entries[key] = en
		e.order = append(e.order, key)
	}
	en.ops++
	en.sumBytes += bytes
	en.sumMeasNs += measNs
	en.sumModelNs += modelNs
	en.rooflineGBs = rooflineGBs

	gbs := en.sumBytes / en.sumMeasNs // bytes/ns ≡ GB/s
	en.achieved.Set(gbs)
	if rooflineGBs > 0 {
		en.fraction.Set(gbs / rooflineGBs)
	}
	if en.sumModelNs > 0 {
		en.modelError.Set(en.sumMeasNs / en.sumModelNs)
	}
	if en.fractionHist != nil && rooflineGBs > 0 {
		en.fractionHist.Observe((bytes / measNs) / rooflineGBs)
	}
}

// traceNameLocked interns the quantized span name for a roofline fraction:
// 10% bins up to 150%, one overflow bin. The bin count bounds the interned
// name table no matter how many operations are traced.
func (e *Engine) traceNameLocked(method string, frac float64) obs.NameID {
	var label string
	if frac >= 1.5 {
		label = method + " >150% of roofline"
	} else {
		bin := int(frac * 10)
		label = fmt.Sprintf("%s %d-%d%% of roofline", method, bin*10, bin*10+10)
	}
	key := "attrib/" + label
	id, ok := e.traceNames[key]
	if !ok {
		id = obs.RegisterName(key)
		e.traceNames[key] = id
	}
	return id
}
