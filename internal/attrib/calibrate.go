package attrib

import (
	"strconv"
	"sync"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stream"
)

// Calibration knobs. The defaults size each STREAM array at 64 MB (three
// arrays, 192 MB footprint) so the measurement streams from memory rather
// than the last-level cache on any machine this runs on. Tests shrink them.
var (
	// CalibrationSize is the STREAM array length in float64 elements.
	CalibrationSize = 8 << 20
	// CalibrationReps is the STREAM repetition count (best rate wins).
	CalibrationReps = 2
)

type calKey struct {
	threads, domains int
}

var (
	calMu    sync.Mutex
	calCache = map[calKey][]stream.DomainResult{}
)

// Calibrate measures (or returns the memoized) per-domain STREAM bandwidth
// for a pool's shape. Keyed by (threads, domains): on one machine every pool
// of the same shape sees the same memory system, so a bind never re-runs the
// ~hundred-millisecond measurement. Runs the pool, so call it only while no
// kernel operation is in flight (Bind time, never from the sample hook).
func Calibrate(pool *parallel.Pool) []stream.DomainResult {
	key := calKey{threads: pool.Size(), domains: pool.Domains()}
	calMu.Lock()
	defer calMu.Unlock()
	if rs, ok := calCache[key]; ok {
		return rs
	}
	rs := stream.RunPerDomain(pool, CalibrationSize, CalibrationReps)
	calCache[key] = rs
	for _, r := range rs {
		streamGauge(r.Domain).Set(stream.GB(r.Triad))
	}
	return rs
}

func streamGauge(domain int) *obs.Gauge {
	return obs.NewGauge("symspmv_attrib_stream_gbps",
		"Measured STREAM triad bandwidth of one memory domain's worker group (GB/s), the roofline denominator.",
		"domain", strconv.Itoa(domain))
}
