package attrib

import (
	"encoding/json"
	"net/http"

	"repro/internal/obs"
	"repro/internal/stream"
)

// SnapshotEntry is one attribution stream's cumulative state, as served by
// /debug/attrib.
type SnapshotEntry struct {
	Method              string  `json:"method"`
	Phase               string  `json:"phase"`
	Domain              string  `json:"domain"`
	Ops                 int64   `json:"ops"`
	MeasuredUsPerOp     float64 `json:"measured_us_per_op"`
	ModelUsPerOp        float64 `json:"model_us_per_op"`
	PredictedBytesPerOp float64 `json:"predicted_bytes_per_op"`
	AchievedGBs         float64 `json:"achieved_gbps"`
	RooflineGBs         float64 `json:"roofline_gbps"`
	RooflineFraction    float64 `json:"roofline_fraction"`
	ModelError          float64 `json:"model_error"`
}

// SnapshotStream is one domain's calibrated STREAM measurement.
type SnapshotStream struct {
	Domain   int     `json:"domain"`
	Threads  int     `json:"threads"`
	TriadGBs float64 `json:"triad_gbps"`
	ArrayMB  float64 `json:"array_mb"`
}

// Snapshot is the /debug/attrib document.
type Snapshot struct {
	Stream  []SnapshotStream `json:"stream"`
	Entries []SnapshotEntry  `json:"entries"`
}

// Snapshot returns the engine's current attribution state.
func (e *Engine) Snapshot() Snapshot {
	snap := Snapshot{Stream: []SnapshotStream{}, Entries: []SnapshotEntry{}}
	calMu.Lock()
	for _, rs := range calCache {
		for _, r := range rs {
			snap.Stream = append(snap.Stream, SnapshotStream{
				Domain:   r.Domain,
				Threads:  r.Threads,
				TriadGBs: stream.GB(r.Triad),
				ArrayMB:  float64(r.ArrayBytes) / (1 << 20),
			})
		}
	}
	calMu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	for _, key := range e.order {
		en := e.entries[key]
		ops := float64(en.ops)
		se := SnapshotEntry{
			Method:              key.Method,
			Phase:               key.Phase,
			Domain:              key.Domain,
			Ops:                 en.ops,
			MeasuredUsPerOp:     en.sumMeasNs / ops / 1e3,
			ModelUsPerOp:        en.sumModelNs / ops / 1e3,
			PredictedBytesPerOp: en.sumBytes / ops,
			AchievedGBs:         en.sumBytes / en.sumMeasNs,
			RooflineGBs:         en.rooflineGBs,
		}
		if en.rooflineGBs > 0 {
			se.RooflineFraction = se.AchievedGBs / en.rooflineGBs
		}
		if en.sumModelNs > 0 {
			se.ModelError = en.sumMeasNs / en.sumModelNs
		}
		snap.Entries = append(snap.Entries, se)
	}
	return snap
}

// ServeHTTP serves the snapshot as JSON, making the engine mountable as the
// /debug/attrib endpoint.
func (e *Engine) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(e.Snapshot())
}

func init() {
	obs.HandleDebug("/debug/attrib", Default)
}
