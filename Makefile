GO ?= go

.PHONY: all build test race race-color race-colored race-shard vet bench bench-json bench-spmm bench-smoke bench-diff ci tune-demo telemetry-smoke fuzz-smoke serve-smoke attrib-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-colored focuses the race detector on the conflict-free colored
# schedule: its correctness claim is precisely "no two concurrent blocks
# write the same element", which -race verifies directly against the real
# interleavings.
race-colored:
	$(GO) test -race -run Color ./internal/color ./internal/core .

# race-color stresses the recursive algebraic coloring specifically: the
# level-set construction, the recursive split, the greedy-vs-recursive
# comparison on the scattered suite, and the colored kernels (symmetric and
# kind-generalized) that execute the resulting schedule, repeated so the
# scheduler sees varied interleavings.
race-color:
	$(GO) test -race -count=3 -run 'Color|Recursive|Level' ./internal/color
	$(GO) test -race -run 'Color|Kind' ./internal/core ./internal/fuzzcheck

# race-shard focuses the race detector on the NUMA-sharded execution path:
# the domain-scoped spin barriers, the hierarchical two-level reduction
# (domain-local combine overlapping remote multiplies is exactly where a
# misscoped barrier would race), and the differential topology sweep.
race-shard:
	$(GO) test -race -run 'Hier|Domain|Shard|Topolog' ./internal/parallel ./internal/partition ./internal/core ./internal/fuzzcheck .

vet:
	$(GO) vet ./...

# Quick benchmark smoke: the execution-engine microbenchmarks (pool dispatch,
# spin vs channel phases) plus the host SpM×V dispatch comparison.
bench:
	$(GO) test -run xxx -bench 'BenchmarkPoolRun|BenchmarkRunPhases|BenchmarkSpinBarrier' -benchtime 200x ./internal/parallel
	$(GO) test -run xxx -bench 'BenchmarkSpMVDispatch|BenchmarkCGFusion' -benchtime 50x .

# bench-json measures every symmetric method (matrix × threads) on this host
# with the per-phase breakdown and writes the machine-readable record to
# BENCH_pr10.json; gate a change with
# `go run ./cmd/bench-diff BENCH_pr8.json BENCH_pr10.json`.
bench-json:
	$(GO) run ./cmd/spmv-bench -exp bench-json -scale 0.02 -iters 16 -json BENCH_pr10.json

# bench-spmm sweeps multi-RHS widths (scalar, spmm2/4/8, each with and
# without hub caching where the analysis finds a hub) over a paper-suite
# subset plus the synthetic power-law hub matrices, and writes the
# machine-readable record to BENCH_pr6.json. Scale 0.15 keeps the run short
# while making x large enough that hub caching has cache pressure to relieve.
bench-spmm:
	$(GO) run ./cmd/spmv-bench -exp spmm-bench -scale 0.15 -iters 24 -matrices consph,bmw7st_1 -json BENCH_pr6.json

# bench-smoke is the cheap CI gate for the SpMM fast path: it checks the
# deterministic traffic model — matrix bytes per useful flop must fall
# strictly as the RHS width grows — and runs each blocked width once.
# Wall-clock is deliberately not asserted (CI machines are too noisy).
bench-smoke:
	$(GO) run ./cmd/spmv-bench -exp spmm-smoke -scale 0.01 -matrices consph

# telemetry-smoke runs cg-solve with the metrics endpoint and trace writer
# enabled, scrapes /metrics for the kernel phase histograms, and validates
# the Chrome trace parses — the observability layer end to end.
telemetry-smoke:
	./scripts/telemetry_smoke.sh

# fuzz-smoke is the adversarial gate: the full differential suite (every
# generator case × format × reduction × thread count vs the serial dense
# reference) under the race detector, then each native fuzz target on a short
# budget. Go allows one -fuzz pattern per invocation, hence the loop; the
# checked-in regression corpus under internal/fuzzcheck/testdata/ also runs
# on every plain `go test`.
fuzz-smoke:
	$(GO) test -race -count=1 ./internal/fuzzcheck/
	for t in FuzzReadMatrixMarket FuzzDecodeBlob FuzzSymDeserialize; do \
		$(GO) test -run '^$$' -fuzz "^$$t\$$" -fuzztime 10s ./internal/fuzzcheck/ || exit 1; \
	done

# attrib-smoke drives the roofline attribution engine end to end: a live
# solve must expose physically plausible achieved-bandwidth fractions per
# (method, phase) on /debug/attrib and /metrics, and a served solve must
# carry its request id (inbound traceparent) and stage timings through the
# structured request log.
attrib-smoke:
	./scripts/attrib_smoke.sh

# bench-diff self-tests the benchmark regression sentinel against the
# checked-in record: a record diffed against itself must be clean, and a
# synthetically halved copy must make the sentinel exit non-zero. To gate a
# real change: `make bench-json` on both revisions, then
# `go run ./cmd/bench-diff OLD.json NEW.json`.
bench-diff:
	go run ./cmd/bench-diff BENCH_pr8.json BENCH_pr8.json >/dev/null
	@tmp=$$(mktemp); jq '.records[].gflops_host *= 0.5' BENCH_pr8.json > $$tmp; \
	if go run ./cmd/bench-diff BENCH_pr8.json $$tmp >/dev/null 2>/dev/null; then \
		echo "bench-diff: FAIL: sentinel missed a 50% regression"; rm -f $$tmp; exit 1; \
	fi; rm -f $$tmp
	@if [ -f BENCH_pr10.json ]; then \
		go run ./cmd/bench-diff BENCH_pr8.json BENCH_pr10.json || exit 1; \
	fi
	@echo "bench-diff: sentinel OK (clean self-diff, regression caught)"

# serve-smoke drives symspmv-serve end to end: load a generated matrix, show
# that concurrent solves coalesce into multi-RHS dispatches (batch-size
# histogram >= 2 on /metrics) with every lane matching a scalar reference
# solve to 1e-12, that a saturated queue returns typed 429s instead of
# hanging, and that SIGTERM drains cleanly.
serve-smoke:
	./scripts/serve_smoke.sh

# ci is the gate for every change: vet (fails the build on findings), build,
# the colored-schedule and sharded-execution race focuses, the full test
# suite under the race
# detector (the execution engine's spin barrier and phase fusion are exactly
# the kind of code -race exists for), the telemetry smoke, the fuzz smoke
# (differential checking plus a short run of each fuzz target), the SpMM
# traffic-model smoke, and the serving-path smoke.
ci: vet build race-colored race-shard race telemetry-smoke fuzz-smoke bench-smoke serve-smoke attrib-smoke bench-diff

# tune-demo runs the empirical autotuner on a small slice of the paper suite
# and prints one decision table per matrix: every candidate plan with its
# modeled prediction, measured micro-trial time, build cost, and fate.
tune-demo:
	$(GO) run ./cmd/spmv-bench -format auto -scale 0.05 -matrices parabolic_fem,consph
