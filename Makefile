GO ?= go

.PHONY: all build test race vet bench ci tune-demo

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Quick benchmark smoke: the execution-engine microbenchmarks (pool dispatch,
# spin vs channel phases) plus the host SpM×V dispatch comparison.
bench:
	$(GO) test -run xxx -bench 'BenchmarkPoolRun|BenchmarkRunPhases|BenchmarkSpinBarrier' -benchtime 200x ./internal/parallel
	$(GO) test -run xxx -bench 'BenchmarkSpMVDispatch|BenchmarkCGFusion' -benchtime 50x .

# ci is the gate for every change: vet, build, and the full test suite under
# the race detector (the execution engine's spin barrier and phase fusion are
# exactly the kind of code -race exists for).
ci: vet build race

# tune-demo runs the empirical autotuner on a small slice of the paper suite
# and prints one decision table per matrix: every candidate plan with its
# modeled prediction, measured micro-trial time, build cost, and fate.
tune-demo:
	$(GO) run ./cmd/spmv-bench -format auto -scale 0.05 -matrices parabolic_fem,consph
