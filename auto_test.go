package symspmv

import (
	"math"
	"os"
	"testing"

	"repro/internal/autotune"
)

// autoTestOptions keeps AutoKernel tests fast: tiny trial rounds, capped
// threads, and a throwaway cache directory.
func autoTestOptions(t *testing.T) []AutoOption {
	t.Helper()
	return []AutoOption{
		AutoCacheDir(t.TempDir()),
		AutoMaxThreads(2),
		AutoTrialIters(2),
	}
}

// TestAutoKernelCachesDecision is the acceptance criterion for the tuning
// cache: the first AutoKernel call on a matrix searches (trials > 0), the
// second call on the same matrix and cache hits the persisted plan and runs
// zero micro-trials — asserted via the Decision trial counter.
func TestAutoKernelCachesDecision(t *testing.T) {
	A, err := GeneratePoisson2D(40)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := []AutoOption{AutoCacheDir(dir), AutoMaxThreads(2), AutoTrialIters(2)}

	k1, d1, err := AutoKernel(A, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer k1.Close()
	if d1.CacheHit {
		t.Fatal("first AutoKernel call reported a cache hit on an empty cache")
	}
	if d1.Trials == 0 {
		t.Fatal("first AutoKernel call ran zero micro-trials")
	}

	k2, d2, err := AutoKernel(A, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	if !d2.CacheHit {
		t.Fatal("second AutoKernel call missed the tuning cache")
	}
	if d2.Trials != 0 {
		t.Fatalf("second AutoKernel call ran %d micro-trials, want 0 (cached plan)", d2.Trials)
	}
	if d2.Plan != d1.Plan {
		t.Fatalf("cached plan %v != tuned plan %v", d2.Plan, d1.Plan)
	}

	// Both kernels must compute the same operator as the serial reference.
	n := A.N()
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(2*i + 1))
	}
	want := make([]float64, n)
	A.MulVec(x, want)
	for name, k := range map[string]Kernel{"tuned": k1, "cached": k2} {
		y := make([]float64, n)
		k.MulVec(x, y)
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-12 {
				t.Fatalf("%s kernel y[%d] = %g, serial %g", name, i, y[i], want[i])
			}
		}
	}
}

func TestAutoKernelNoCache(t *testing.T) {
	A, err := GeneratePoisson2D(24)
	if err != nil {
		t.Fatal(err)
	}
	opts := append(autoTestOptions(t), AutoNoCache())
	for call := 0; call < 2; call++ {
		k, d, err := AutoKernel(A, opts...)
		if err != nil {
			t.Fatal(err)
		}
		k.Close()
		if d.CacheHit || d.Trials == 0 {
			t.Fatalf("call %d with AutoNoCache: CacheHit=%v Trials=%d, want a fresh search",
				call, d.CacheHit, d.Trials)
		}
	}
}

func TestAutoKernelSurvivesCorruptCacheEntry(t *testing.T) {
	A, err := GeneratePoisson2D(24)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := []AutoOption{AutoCacheDir(dir), AutoMaxThreads(2), AutoTrialIters(2)}
	k, _, err := AutoKernel(A, opts...)
	if err != nil {
		t.Fatal(err)
	}
	k.Close()
	// Smash every cache entry; AutoKernel must retune, not fail.
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("expected cache entries in %s (err %v)", dir, err)
	}
	for _, e := range ents {
		if err := os.WriteFile(dir+"/"+e.Name(), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	k2, d2, err := AutoKernel(A, opts...)
	if err != nil {
		t.Fatal(err)
	}
	k2.Close()
	if d2.CacheHit {
		t.Fatal("AutoKernel reported a cache hit from a corrupted entry")
	}
	if d2.Trials == 0 {
		t.Fatal("AutoKernel did not retune after cache corruption")
	}
}

func TestAutoKernelFormatRestriction(t *testing.T) {
	A, err := GeneratePoisson2D(24)
	if err != nil {
		t.Fatal(err)
	}
	k, d, err := AutoKernel(A, append(autoTestOptions(t),
		AutoFormats(SSSIndexed, SSSAtomic), AutoReorder(false))...)
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	if f := d.Plan.Format; f != autotune.SSSIndexed && f != autotune.SSSAtomic {
		t.Fatalf("plan format %v outside the restricted space", f)
	}
	// CSX (unsymmetric) is not in the plan space and must be rejected early.
	if _, _, err := AutoKernel(A, append(autoTestOptions(t), AutoFormats(CSX))...); err == nil {
		t.Fatal("AutoKernel accepted CSX in AutoFormats")
	}
}

// TestAutoKernelColoredPlan is the "-format auto can select and report a
// colored plan" acceptance criterion: restricted to SSS-colored the tuner
// must produce a working colored kernel, report it as such, and keep its
// results on the serial reference.
func TestAutoKernelColoredPlan(t *testing.T) {
	A, err := GeneratePoisson2D(32)
	if err != nil {
		t.Fatal(err)
	}
	k, d, err := AutoKernel(A, append(autoTestOptions(t),
		AutoFormats(SSSColored), AutoReorder(false))...)
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	if d.Plan.Format != autotune.SSSColored {
		t.Fatalf("plan format %v, want SSS-colored", d.Plan.Format)
	}
	if k.Format() != SSSColored {
		t.Fatalf("kernel reports format %v", k.Format())
	}
	n := A.N()
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(5*i + 2))
	}
	want := make([]float64, n)
	A.MulVec(x, want)
	y := make([]float64, n)
	k.MulVec(x, y)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-12*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("colored plan y[%d] = %g, serial %g", i, y[i], want[i])
		}
	}
}

// TestAutotunePlanSpaceConsistency is the cross-format consistency net: on
// each paper-suite matrix (at small scale) every format the autotuner can
// pick — including the RCM-reordered plan variants — must agree with the
// serial CSR-side reference (Matrix.MulVec) to 1e-12.
func TestAutotunePlanSpaceConsistency(t *testing.T) {
	scale := 0.005
	for _, name := range SuiteNames() {
		A, err := GenerateSuiteMatrix(name, scale)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := A.N()
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Cos(float64(3*i + 2))
		}
		want := make([]float64, n)
		A.MulVec(x, want)
		tol := 1e-12
		for f := range autoFormat {
			for _, reorder := range []bool{false, true} {
				plan := autotune.Plan{Format: autoFormat[f], Threads: 2, Reorder: reorder}
				k, err := A.planKernel(plan)
				if err != nil {
					t.Fatalf("%s: building %v: %v", name, plan, err)
				}
				y := make([]float64, n)
				k.MulVec(x, y)
				k.Close()
				for i := range y {
					if d := math.Abs(y[i] - want[i]); d > tol*math.Max(1, math.Abs(want[i])) {
						t.Fatalf("%s %v: y[%d] = %g, serial %g (|Δ| = %.2e)",
							name, plan, i, y[i], want[i], d)
					}
				}
			}
		}
	}
}

// TestAutoKernelReorderedPlanSolves checks a reordered plan end to end
// through CG: the permutation wrap must keep SolveCG (which type-asserts the
// kernel and uses the fused mul-dot path) converging to the right answer.
func TestAutoKernelReorderedPlanSolves(t *testing.T) {
	A, err := GeneratePoisson2D(30)
	if err != nil {
		t.Fatal(err)
	}
	k, err := A.planKernel(autotune.Plan{Format: autotune.SSSIndexed, Threads: 2, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()

	n := A.N()
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, n)
	A.MulVec(ones, b)
	x := make([]float64, n)
	res, err := SolveCG(k, b, x, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG on the reordered kernel did not converge: %+v", res)
	}
	for i := range x {
		if math.Abs(x[i]-1) > 1e-8 {
			t.Fatalf("x[%d] = %g, want 1", i, x[i])
		}
	}
}
