package symspmv

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildRandomSPD(t testing.TB, rng *rand.Rand, n, offPerRow int) *Matrix {
	t.Helper()
	b := NewBuilder(n)
	rowAbs := make([]float64, n)
	for r := 1; r < n; r++ {
		for k := 0; k < offPerRow; k++ {
			c := rng.Intn(r)
			v := rng.NormFloat64()
			b.Set(r, c, v)
			rowAbs[r] += math.Abs(v)
			rowAbs[c] += math.Abs(v)
		}
	}
	for r := 0; r < n; r++ {
		b.Set(r, r, rowAbs[r]+1)
	}
	A, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return A
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(3)
	b.Set(0, 0, 1)
	b.Set(2, 0, 5)
	b.Set(0, 2, 5) // upper coordinates are mirrored; sums with the previous
	A, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if A.N() != 3 {
		t.Fatalf("N = %d", A.N())
	}
	x := []float64{0, 0, 1}
	y := make([]float64, 3)
	A.MulVec(x, y)
	if y[0] != 10 {
		t.Fatalf("mirrored duplicate not summed: y[0] = %g, want 10", y[0])
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.Set(5, 0, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted out-of-range entry")
	}
}

func TestAllKernelFormatsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	A := buildRandomSPD(t, rng, 500, 4)
	n := A.N()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	A.MulVec(x, want)

	for _, f := range []Format{CSR, CSX, BCSR, SSSNaive, SSSEffective, SSSIndexed, SSSAtomic, SSSColored, CSXSym} {
		for _, threads := range []int{1, 4} {
			k, err := A.Kernel(f, Threads(threads))
			if err != nil {
				t.Fatalf("%v: %v", f, err)
			}
			got := make([]float64, n)
			k.MulVec(x, got)
			k.MulVec(x, got) // repeatability with reused local state
			for i := range want {
				if math.Abs(want[i]-got[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("%v threads=%d: row %d differs", f, threads, i)
				}
			}
			if k.Format() != f || k.Threads() != threads || k.Bytes() <= 0 {
				t.Fatalf("%v: bad kernel metadata", f)
			}
			k.Close()
		}
	}
}

func TestKernelCloseIsIdempotentAndGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	A := buildRandomSPD(t, rng, 50, 2)
	k, err := A.Kernel(SSSIndexed, Threads(2))
	if err != nil {
		t.Fatal(err)
	}
	k.Close()
	k.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for MulVec on closed kernel")
		}
	}()
	k.MulVec(make([]float64, 50), make([]float64, 50))
}

func TestKernelRejectsBadThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	A := buildRandomSPD(t, rng, 20, 2)
	if _, err := A.Kernel(CSR, Threads(-1)); err == nil {
		t.Fatal("accepted negative thread count")
	}
}

func TestSolveCGOnPoisson(t *testing.T) {
	A, err := GeneratePoisson2D(40)
	if err != nil {
		t.Fatal(err)
	}
	n := A.N()
	k, err := A.Kernel(SSSIndexed, Threads(4))
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()

	xstar := make([]float64, n)
	for i := range xstar {
		xstar[i] = math.Sin(float64(i) * 0.1)
	}
	b := make([]float64, n)
	A.MulVec(xstar, b)

	x := make([]float64, n)
	res, err := SolveCG(k, b, x, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: %v", res)
	}
	for i := range x {
		if math.Abs(x[i]-xstar[i]) > 1e-6 {
			t.Fatalf("solution error at %d: %g", i, math.Abs(x[i]-xstar[i]))
		}
	}
}

func TestSolveCGDimsChecked(t *testing.T) {
	A, _ := GeneratePoisson2D(5)
	k, _ := A.Kernel(CSR, Threads(1))
	defer k.Close()
	if _, err := SolveCG(k, make([]float64, 3), make([]float64, A.N()), CGOptions{}); err == nil {
		t.Fatal("accepted wrong-length b")
	}
}

func TestMatrixMarketRoundTripThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	A := buildRandomSPD(t, rng, 80, 3)
	var buf bytes.Buffer
	if err := A.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	B, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if B.N() != A.N() || B.NNZ() != A.NNZ() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", B.N(), B.NNZ(), A.N(), A.NNZ())
	}
	x := make([]float64, A.N())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, A.N())
	y2 := make([]float64, A.N())
	A.MulVec(x, y1)
	B.MulVec(x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("multiply differs after round trip at %d", i)
		}
	}
}

func TestReorderRCMFacade(t *testing.T) {
	A, err := GenerateSuiteMatrix("G3_circuit", 0.003)
	if err != nil {
		t.Fatal(err)
	}
	R, perm, err := A.ReorderRCM()
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != A.N() {
		t.Fatalf("perm length %d", len(perm))
	}
	if R.Stats().Bandwidth >= A.Stats().Bandwidth {
		t.Fatalf("RCM did not reduce bandwidth: %d -> %d",
			A.Stats().Bandwidth, R.Stats().Bandwidth)
	}
	// Operator equivalence: R·(P·x) == P·(A·x).
	rng := rand.New(rand.NewSource(95))
	x := make([]float64, A.N())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	px := make([]float64, A.N())
	for i := range x {
		px[perm[i]] = x[i]
	}
	y := make([]float64, A.N())
	A.MulVec(x, y)
	py := make([]float64, A.N())
	R.MulVec(px, py)
	for i := range y {
		if math.Abs(py[perm[i]]-y[i]) > 1e-9 {
			t.Fatalf("reordered operator differs at %d", i)
		}
	}
}

func TestSuiteNames(t *testing.T) {
	names := SuiteNames()
	if len(names) != 12 || names[0] != "parabolic_fem" || names[11] != "ldoor" {
		t.Fatalf("SuiteNames = %v", names)
	}
	if _, err := GenerateSuiteMatrix("nope", 0.01); err == nil {
		t.Fatal("accepted unknown suite matrix")
	}
}

func TestGeneratePoisson2DValidation(t *testing.T) {
	if _, err := GeneratePoisson2D(1); err == nil {
		t.Fatal("accepted side 1")
	}
	A, err := GeneratePoisson2D(3)
	if err != nil {
		t.Fatal(err)
	}
	// Row sums of the interior are 0 except boundary truncation; check the
	// classic stencil at the center: 4 on diagonal, four -1 neighbors.
	x := make([]float64, 9)
	x[4] = 1
	y := make([]float64, 9)
	A.MulVec(x, y)
	if y[4] != 4 || y[1] != -1 || y[3] != -1 || y[5] != -1 || y[7] != -1 {
		t.Fatalf("Poisson stencil wrong: %v", y)
	}
}

// Property: for any SPD system, every format's kernel yields the same CG
// solution as the reference serial multiply.
func TestQuickFormatsSolveIdentically(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		A := buildRandomSPD(t, rng, n, 1+rng.Intn(3))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ref := make([]float64, n)
		kRef, err := A.Kernel(CSR, Threads(1))
		if err != nil {
			return false
		}
		if _, err := SolveCG(kRef, b, ref, CGOptions{Tol: 1e-11}); err != nil {
			return false
		}
		kRef.Close()

		format := []Format{SSSIndexed, CSXSym}[rng.Intn(2)]
		k, err := A.Kernel(format, Threads(1+rng.Intn(4)))
		if err != nil {
			return false
		}
		defer k.Close()
		x := make([]float64, n)
		if _, err := SolveCG(k, b, x, CGOptions{Tol: 1e-11}); err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-ref[i]) > 1e-6*(1+math.Abs(ref[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveCGJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	A := buildRandomSPD(t, rng, 400, 3)
	k, err := A.Kernel(SSSIndexed, Threads(3))
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	xstar := make([]float64, A.N())
	for i := range xstar {
		xstar[i] = rng.NormFloat64()
	}
	b := make([]float64, A.N())
	A.MulVec(xstar, b)
	x := make([]float64, A.N())
	res, err := SolveCGJacobi(A, k, b, x, CGOptions{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Jacobi-PCG did not converge: %v", res)
	}
	for i := range x {
		if math.Abs(x[i]-xstar[i]) > 1e-6 {
			t.Fatalf("solution error at %d: %g", i, math.Abs(x[i]-xstar[i]))
		}
	}
	// Mismatched matrix is rejected.
	B := buildRandomSPD(t, rng, 10, 1)
	if _, err := SolveCGJacobi(B, k, b, x, CGOptions{}); err == nil {
		t.Fatal("accepted mismatched matrix/kernel pair")
	}
}

func TestSaveAndLoadCSXSymKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	A := buildRandomSPD(t, rng, 300, 3)
	k, err := A.Kernel(CSXSym, Threads(3))
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	path := t.TempDir() + "/a.csxs"
	if err := SaveKernel(k, path); err != nil {
		t.Fatal(err)
	}
	k2, err := LoadCSXSymKernel(path)
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	if k2.Threads() != 3 || k2.Bytes() != k.Bytes() {
		t.Fatalf("loaded kernel metadata differs: threads=%d bytes=%d", k2.Threads(), k2.Bytes())
	}
	x := make([]float64, A.N())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, A.N())
	y2 := make([]float64, A.N())
	k.MulVec(x, y1)
	k2.MulVec(x, y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("loaded kernel differs at %d", i)
		}
	}
	// Non-CSXSym kernels are rejected.
	kc, _ := A.Kernel(CSR, Threads(1))
	defer kc.Close()
	if err := SaveKernel(kc, path); err == nil {
		t.Fatal("SaveKernel accepted a CSR kernel")
	}
}

func TestMulMatFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	A := buildRandomSPD(t, rng, 200, 3)
	n := A.N()
	const nv = 3
	x := make([]float64, n*nv)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// Reference: per-column serial multiplies.
	want := make([]float64, n*nv)
	xc := make([]float64, n)
	yc := make([]float64, n)
	for v := 0; v < nv; v++ {
		for i := 0; i < n; i++ {
			xc[i] = x[i*nv+v]
		}
		A.MulVec(xc, yc)
		for i := 0; i < n; i++ {
			want[i*nv+v] = yc[i]
		}
	}
	for _, f := range []Format{CSR, SSSIndexed, SSSNaive, SSSEffective, SSSColored} {
		k, err := A.Kernel(f, Threads(3))
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, n*nv)
		if err := MulMat(k, x, y, nv); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		for i := range want {
			if math.Abs(want[i]-y[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%v: component %d differs", f, i)
			}
		}
		k.Close()
	}
	// Unsupported format errors cleanly.
	kx, err := A.Kernel(CSXSym, Threads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer kx.Close()
	if err := MulMat(kx, x, make([]float64, n*nv), nv); err == nil {
		t.Fatal("MulMat accepted CSX-Sym kernel")
	}
	// Bad dims error cleanly.
	kr, _ := A.Kernel(CSR, Threads(1))
	defer kr.Close()
	if err := MulMat(kr, x[:3], x[:3], nv); err == nil {
		t.Fatal("MulMat accepted bad dims")
	}
}
