package symspmv

import (
	"fmt"

	"repro/internal/csx"
	"repro/internal/parallel"
)

// CSX-Sym preprocessing (substructure detection and encoding) costs the
// equivalent of tens to hundreds of SpM×V operations (§V-E of the paper).
// These helpers persist the encoded matrix so the cost is paid once per
// matrix and amortized across solver runs.

// SaveKernel persists a CSX-Sym kernel's encoded matrix to path in the
// library's versioned, checksummed binary format. Only CSXSym kernels can
// be persisted (the other formats rebuild in O(nnz) anyway).
func SaveKernel(k Kernel, path string) error {
	bk, ok := k.(*boundKernel)
	if !ok || bk.sym == nil {
		return fmt.Errorf("symspmv: SaveKernel supports CSX-Sym kernels only (got %v)", k.Format())
	}
	return bk.sym.WriteFile(path)
}

// LoadCSXSymKernel loads a kernel persisted with SaveKernel. The thread
// count is fixed by the partition stored in the file (CSX-Sym is encoded
// per thread). The reduction state is rebuilt on load.
func LoadCSXSymKernel(path string) (Kernel, error) {
	sm, err := csx.ReadSymMatrixFile(path)
	if err != nil {
		return nil, err
	}
	pool := parallel.NewPool(len(sm.Blobs))
	return &boundKernel{
		format: CSXSym,
		pool:   pool,
		n:      sm.N,
		sym:    sm,
		mul:    func(x, y []float64) { sm.MulVec(pool, x, y) },
		bytes:  sm.Bytes(),
	}, nil
}
