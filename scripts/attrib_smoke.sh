#!/usr/bin/env bash
# Attribution smoke test: the roofline attribution engine end to end, then
# request-scoped tracing through the serve path.
#
# Leg 1 (cg-solve): solve a memory-resident system with -metrics-addr, then
# assert that /debug/attrib reports a STREAM calibration and, for every
# attribution entry, an achieved-bandwidth fraction in (0, 1.5] — i.e. the
# engine joined measured phase times with predicted traffic into a physically
# plausible rate — and that /metrics exposes the symspmv_attrib_* families.
# The matrix is generated at a scale whose per-op traffic exceeds the L3 on
# any plausible host, so the memory roofline is the binding one.
#
# Leg 2 (symspmv-serve): load a small matrix, send a solve carrying a W3C
# traceparent, and assert the trace-id comes back in X-Request-Id, the
# structured request log carries the id and the stage decomposition, and the
# serve process exposes the per-stage latency histogram.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:9468
SERVE_ADDR=127.0.0.1:9469
TMP=$(mktemp -d)
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "attrib-smoke: building binaries"
go build -o "$TMP/cg-solve" ./cmd/cg-solve
go build -o "$TMP/symspmv-serve" ./cmd/symspmv-serve
go build -o "$TMP/mtx-gen" ./cmd/mtx-gen

echo "attrib-smoke: generating matrices"
"$TMP/mtx-gen" -out "$TMP/big" -scale 1.5 -matrices parabolic_fem >/dev/null
"$TMP/mtx-gen" -out "$TMP/small" -scale 0.01 -matrices parabolic_fem >/dev/null
BIG=$(ls "$TMP"/big/*.mtx | head -1)
SMALL=$(ls "$TMP"/small/*.mtx | head -1)

# ---- Leg 1: cg-solve attribution --------------------------------------------

echo "attrib-smoke: solving with -metrics-addr $ADDR"
"$TMP/cg-solve" -format sss-eff -threads 2 -maxiter 60 \
    -metrics-addr "$ADDR" -linger 60s "$BIG" >"$TMP/cg.out" 2>&1 &
PID=$!

ATTRIB=""
for _ in $(seq 1 120); do
    if ATTRIB=$(curl -fsS "http://$ADDR/debug/attrib" 2>/dev/null) &&
        jq -e '.entries | length > 0' <<<"$ATTRIB" >/dev/null 2>&1; then
        break
    fi
    ATTRIB=""
    sleep 0.5
done
if [ -z "$ATTRIB" ]; then
    echo "attrib-smoke: FAIL: /debug/attrib never served entries" >&2
    cat "$TMP/cg.out" >&2
    exit 1
fi

# The calibration ran and measured a positive triad bandwidth.
if ! jq -e '.stream | length > 0 and all(.triad_gbps > 0)' <<<"$ATTRIB" >/dev/null; then
    echo "attrib-smoke: FAIL: no positive STREAM calibration in /debug/attrib" >&2
    jq . <<<"$ATTRIB" >&2
    exit 1
fi

# Every attribution entry is physically plausible: achieved bandwidth is a
# positive fraction of the measured roofline, at most 1.5 (the matrix streams
# from memory, so beating STREAM by >50% would mean broken accounting).
if ! jq -e '.entries | length > 0 and all(.roofline_fraction > 0 and .roofline_fraction <= 1.5)' <<<"$ATTRIB" >/dev/null; then
    echo "attrib-smoke: FAIL: roofline fraction outside (0, 1.5]" >&2
    jq '.entries' <<<"$ATTRIB" >&2
    exit 1
fi
# Both phases of the effective-ranges method attribute at 2 threads.
for phase in compute reduction; do
    if ! jq -e --arg ph "$phase" \
        '.entries | any(.method == "effective-ranges" and .phase == $ph and .ops > 0)' \
        <<<"$ATTRIB" >/dev/null; then
        echo "attrib-smoke: FAIL: no $phase attribution entry" >&2
        jq '.entries' <<<"$ATTRIB" >&2
        exit 1
    fi
done
echo "attrib-smoke: /debug/attrib OK ($(jq '.entries | length' <<<"$ATTRIB") entries, fractions $(jq -r '[.entries[].roofline_fraction] | "\(min|.*1000|round/1000)..\(max|.*1000|round/1000)"' <<<"$ATTRIB"))"

METRICS=$(curl -fsS "http://$ADDR/metrics")
for family in symspmv_attrib_achieved_gbps symspmv_attrib_roofline_fraction \
    symspmv_attrib_model_error symspmv_attrib_stream_gbps symspmv_attrib_fraction_bucket; do
    if ! grep -q "^$family" <<<"$METRICS"; then
        echo "attrib-smoke: FAIL: /metrics missing $family" >&2
        exit 1
    fi
done
echo "attrib-smoke: /metrics attribution families OK"

kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
PID=""

# ---- Leg 2: request-scoped tracing through serve ----------------------------

echo "attrib-smoke: starting symspmv-serve on $SERVE_ADDR"
"$TMP/symspmv-serve" -addr "$SERVE_ADDR" 2>"$TMP/serve.log" &
PID=$!
for _ in $(seq 1 60); do
    curl -fsS "http://$SERVE_ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.5
done

curl -fsS "http://$SERVE_ADDR/v1/matrices" \
    -d "{\"id\":\"pf\",\"path\":\"$SMALL\",\"format\":\"sss-idx\",\"threads\":2}" >/dev/null

TRACEID=4bf92f3577b34da6a3ce929d0e0e4736
GOT=$(curl -fsS -D "$TMP/headers" "http://$SERVE_ADDR/v1/matrices/pf/solve" \
    -H "traceparent: 00-$TRACEID-00f067aa0ba902b7-01" -d '{"b_ones":true}')
if ! jq -e '.converged == true' <<<"$GOT" >/dev/null; then
    echo "attrib-smoke: FAIL: served solve did not converge: $GOT" >&2
    exit 1
fi
if ! grep -qi "^x-request-id: $TRACEID" "$TMP/headers"; then
    echo "attrib-smoke: FAIL: X-Request-Id does not echo the inbound trace-id" >&2
    cat "$TMP/headers" >&2
    exit 1
fi
# The structured request log carries the id and the stage decomposition.
if ! grep "request served" "$TMP/serve.log" | grep "request=$TRACEID" |
    grep -q "queue_wait_ms="; then
    echo "attrib-smoke: FAIL: request log missing id or stage timings" >&2
    cat "$TMP/serve.log" >&2
    exit 1
fi
if ! grep "request=$TRACEID" "$TMP/serve.log" | grep -q "solve_ms="; then
    echo "attrib-smoke: FAIL: request log missing solve_ms" >&2
    cat "$TMP/serve.log" >&2
    exit 1
fi
# The per-stage latency histogram and the serve-side attribution endpoint.
SMETRICS=$(curl -fsS "http://$SERVE_ADDR/metrics")
if ! grep -q '^symspmv_serve_stage_seconds_bucket{stage="queue_wait"' <<<"$SMETRICS"; then
    echo "attrib-smoke: FAIL: serve /metrics missing stage histogram" >&2
    exit 1
fi
if ! curl -fsS "http://$SERVE_ADDR/debug/attrib" | jq -e '.entries | all(.roofline_fraction > 0)' >/dev/null; then
    echo "attrib-smoke: FAIL: serve /debug/attrib implausible" >&2
    exit 1
fi
echo "attrib-smoke: serve request tracing OK (id echoed, staged log line present)"

kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
PID=""
echo "attrib-smoke: PASS"
