#!/usr/bin/env bash
# Serve smoke test: start symspmv-serve, load a generated matrix, and drive
# the full serving path end to end:
#   1. concurrent solves coalesce into multi-RHS dispatches (batch_lanes >= 2
#      in responses, batched-lane counters visible on /metrics),
#   2. every coalesced lane matches a scalar reference solve to 1e-12,
#   3. flooding the bounded per-matrix queue yields typed 429 queue_full
#      rejections while every admitted request still completes correctly,
#   4. SIGTERM drains cleanly (exit 0 after in-flight work finishes).
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:9465
BASE="http://$ADDR"
TMP=$(mktemp -d)
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    exit 1
}

echo "serve-smoke: generating test matrix"
go run ./cmd/mtx-gen -out "$TMP" -scale 0.01 -matrices parabolic_fem
MTX=$(ls "$TMP"/*.mtx | head -1)

echo "serve-smoke: building symspmv-serve"
go build -o "$TMP/symspmv-serve" ./cmd/symspmv-serve
"$TMP/symspmv-serve" -version

# A generous window plus a small queue: the window makes concurrent curls
# coalesce reliably, the queue bound makes the flood phase produce 429s.
"$TMP/symspmv-serve" -addr "$ADDR" -window 80ms -queue 8 -max-batch 8 -threads 2 \
    -tune-cache off &>"$TMP/serve.log" &
PID=$!

for _ in $(seq 1 60); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null || fail "server never came up (log: $(cat "$TMP/serve.log"))"

echo "serve-smoke: loading $MTX"
LOAD=$(curl -fsS "$BASE/v1/matrices" \
    -d "{\"id\":\"smoke\",\"path\":\"$MTX\",\"format\":\"sss-idx\",\"threads\":2}")
jq -e '.spmm == true' <<<"$LOAD" >/dev/null || fail "load response: $LOAD"
echo "serve-smoke: loaded n=$(jq .n <<<"$LOAD") nnz=$(jq .nnz <<<"$LOAD") format=$(jq -r .format <<<"$LOAD")"

SOLVE_BODY='{"b_ones":true,"tol":1e-13}'

echo "serve-smoke: scalar reference solve"
curl -fsS "$BASE/v1/matrices/smoke/solve" -d "$SOLVE_BODY" >"$TMP/ref.json"
jq -e '.converged == true' "$TMP/ref.json" >/dev/null || fail "reference solve did not converge"

echo "serve-smoke: firing 6 concurrent solves into an 80ms window"
CURLS=()
for i in $(seq 1 6); do
    curl -fsS "$BASE/v1/matrices/smoke/solve" -d "$SOLVE_BODY" >"$TMP/out$i.json" &
    CURLS+=($!)
done
wait "${CURLS[@]}"

BATCHED=0
for i in $(seq 1 6); do
    jq -e '.converged == true' "$TMP/out$i.json" >/dev/null \
        || fail "concurrent solve $i did not converge: $(cat "$TMP/out$i.json")"
    LANES=$(jq .batch_lanes "$TMP/out$i.json")
    [ "$LANES" -ge 2 ] && BATCHED=$((BATCHED + 1))
    # Per-lane result vs the scalar reference, max abs difference <= 1e-12.
    DIFF=$(jq -n --slurpfile r "$TMP/ref.json" --slurpfile o "$TMP/out$i.json" \
        '[range($r[0].x | length) as $i |
          ($r[0].x[$i] - $o[0].x[$i]) | if . < 0 then -. else . end] | max')
    jq -en --argjson d "$DIFF" '$d <= 1e-12' >/dev/null \
        || fail "solve $i deviates from the scalar reference by $DIFF (> 1e-12)"
done
[ "$BATCHED" -ge 2 ] || fail "only $BATCHED/6 concurrent solves were coalesced"
echo "serve-smoke: $BATCHED/6 solves served in multi-lane dispatches, all within 1e-12 of scalar"

METRICS=$(curl -fsS "$BASE/metrics")
grep -q '^symspmv_serve_batch_size_bucket' <<<"$METRICS" \
    || fail "/metrics missing symspmv_serve_batch_size_bucket"
LANES_BATCHED=$(grep '^symspmv_serve_batched_lanes_total' <<<"$METRICS" | awk '{print $2}')
[ "${LANES_BATCHED:-0}" -ge 2 ] || fail "symspmv_serve_batched_lanes_total = ${LANES_BATCHED:-absent}"
grep -q 'symspmv_serve_matrix_requests_total{matrix="smoke"}' <<<"$METRICS" \
    || fail "/metrics missing the per-matrix request counter"
echo "serve-smoke: /metrics shows $LANES_BATCHED batched lanes"

echo "serve-smoke: flooding the queue (depth 8) with 40 concurrent solves"
CURLS=()
for i in $(seq 1 40); do
    { curl -sS -o "$TMP/flood$i.json" -w '%{http_code}' \
        "$BASE/v1/matrices/smoke/solve" -d "$SOLVE_BODY" >"$TMP/code$i"; } &
    CURLS+=($!)
done
wait "${CURLS[@]}"

OK=0
REJECTED=0
for i in $(seq 1 40); do
    CODE=$(cat "$TMP/code$i")
    case "$CODE" in
    200)
        OK=$((OK + 1))
        jq -e '.converged == true' "$TMP/flood$i.json" >/dev/null \
            || fail "admitted flood solve $i did not converge"
        ;;
    429)
        REJECTED=$((REJECTED + 1))
        [ "$(jq -r .error.code "$TMP/flood$i.json")" = queue_full ] \
            || fail "429 without queue_full code: $(cat "$TMP/flood$i.json")"
        ;;
    *)
        fail "flood solve $i: unexpected status $CODE: $(cat "$TMP/flood$i.json")"
        ;;
    esac
done
[ "$OK" -ge 1 ] || fail "queue flood admitted nothing"
[ "$REJECTED" -ge 1 ] || fail "queue flood produced no 429s (ok=$OK)"
echo "serve-smoke: flood: $OK admitted and correct, $REJECTED rejected with typed queue_full"

echo "serve-smoke: SIGTERM drain"
kill -TERM "$PID"
for _ in $(seq 1 50); do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$PID" 2>/dev/null; then
    fail "server still running 10s after SIGTERM"
fi
set +e
wait "$PID"
STATUS=$?
set -e
PID=""
[ "$STATUS" -eq 0 ] || fail "server exited $STATUS on SIGTERM (log: $(cat "$TMP/serve.log"))"
grep -q 'drained cleanly' "$TMP/serve.log" || fail "no clean-drain log line"
echo "serve-smoke: PASS"
