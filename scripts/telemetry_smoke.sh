#!/usr/bin/env bash
# Telemetry smoke test: run cg-solve with the metrics endpoint and the trace
# writer enabled, scrape /metrics for a known metric family, and validate the
# emitted Chrome trace parses as JSON with at least one event. Exercises the
# full observability path end to end (sampling flag → timed kernel phases →
# registry → HTTP exposition, and tracer → trace_event file).
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:9464
TMP=$(mktemp -d)
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "telemetry-smoke: generating test matrix"
go run ./cmd/mtx-gen -out "$TMP" -scale 0.01 -matrices parabolic_fem
MTX=$(ls "$TMP"/*.mtx | head -1)

echo "telemetry-smoke: building cg-solve"
go build -o "$TMP/cg-solve" ./cmd/cg-solve

echo "telemetry-smoke: solving with -metrics-addr $ADDR -trace-out"
"$TMP/cg-solve" -format sss-idx -threads 2 -metrics-addr "$ADDR" \
    -trace-out "$TMP/trace.json" -linger 30s "$MTX" &
PID=$!

# Poll /metrics until the endpoint is up and the solve has recorded kernel ops.
METRICS=""
for _ in $(seq 1 60); do
    if METRICS=$(curl -fsS "http://$ADDR/metrics" 2>/dev/null) &&
        grep -q '^symspmv_spmv_ops_total{method="indexed"} [1-9]' <<<"$METRICS"; then
        break
    fi
    METRICS=""
    sleep 0.5
done
if [ -z "$METRICS" ]; then
    echo "telemetry-smoke: FAIL: /metrics never served symspmv_spmv_ops_total" >&2
    exit 1
fi
for family in symspmv_spmv_phase_seconds_bucket symspmv_cg_iterations_total symspmv_pool_handoffs_total; do
    if ! grep -q "^$family" <<<"$METRICS"; then
        echo "telemetry-smoke: FAIL: /metrics missing $family" >&2
        exit 1
    fi
done
echo "telemetry-smoke: /metrics OK ($(grep -c '^symspmv_' <<<"$METRICS") symspmv sample lines)"

# The trace file is written right after the solve, before the linger window.
TRACE_OK=""
for _ in $(seq 1 60); do
    if [ -s "$TMP/trace.json" ] &&
        jq -e '.traceEvents | length > 0' "$TMP/trace.json" >/dev/null 2>&1; then
        TRACE_OK=1
        break
    fi
    sleep 0.5
done
if [ -z "$TRACE_OK" ]; then
    echo "telemetry-smoke: FAIL: trace file absent, empty, or not valid trace JSON" >&2
    exit 1
fi
echo "telemetry-smoke: trace OK ($(jq '.traceEvents | length' "$TMP/trace.json") events)"

kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
PID=""
echo "telemetry-smoke: PASS"
