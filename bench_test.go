package symspmv

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (DESIGN.md §5 maps each to its experiment), plus
// real-kernel SpM×V wall-clock benchmarks.
//
// Model-backed benchmarks build every data structure for real and report
// the paper's headline series through b.ReportMetric (speedups, Gflop/s,
// densities); host benchmarks time the real kernels on this machine.
//
// The suite scale defaults to 0.02 so `go test -bench=.` stays fast on a
// laptop; set REPRO_BENCH_SCALE=0.125 (or 1.0) for paper-sized runs.

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"repro/internal/cg"
	"repro/internal/core"
	"repro/internal/csx"
	"repro/internal/harness"
	"repro/internal/parallel"
	"repro/internal/perfmodel"
	"repro/internal/stream"
)

func benchScale() float64 {
	if v := os.Getenv("REPRO_BENCH_SCALE"); v != "" {
		if s, err := strconv.ParseFloat(v, 64); err == nil && s > 0 {
			return s
		}
	}
	return 0.02
}

var (
	suiteOnce sync.Once
	suiteVal  []*harness.SuiteMatrix
	suiteErr  error
	suiteCfg  harness.Config
)

func benchSuite(b *testing.B) ([]*harness.SuiteMatrix, harness.Config) {
	b.Helper()
	suiteOnce.Do(func() {
		suiteCfg = harness.Config{Scale: benchScale(), Iterations: 16}
		suiteVal, suiteErr = harness.LoadSuite(suiteCfg)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal, suiteCfg
}

// BenchmarkTableI_CompressionRatios measures CSX-Sym encoding over the suite
// and reports the average compression ratio (paper Table I).
func BenchmarkTableI_CompressionRatios(b *testing.B) {
	suite, _ := benchSuite(b)
	var avgCR float64
	for i := 0; i < b.N; i++ {
		sum := 0.0
		for _, sm := range suite {
			smx := csx.NewSym(sm.S, 16, core.Indexed, csx.DefaultOptions())
			sum += smx.CompressionRatio()
		}
		avgCR = sum / float64(len(suite))
	}
	b.ReportMetric(100*avgCR, "%CR")
}

// BenchmarkTableII_Stream runs the STREAM triad (paper Table II calibration).
func BenchmarkTableII_Stream(b *testing.B) {
	pool := parallel.NewPool(parallel.DefaultThreads())
	defer pool.Close()
	var triad float64
	for i := 0; i < b.N; i++ {
		res := stream.Run(pool, 1<<21, 1)
		triad = stream.GB(res.Triad)
	}
	b.ReportMetric(triad, "GB/s")
}

// BenchmarkFig4_EffectiveDensity runs the symbolic conflict analysis at the
// paper's featured thread counts and reports the suite-average density.
func BenchmarkFig4_EffectiveDensity(b *testing.B) {
	suite, _ := benchSuite(b)
	for _, p := range []int{24, 256} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				sum := 0.0
				for _, sm := range suite {
					_, _, d := core.ConflictIndexDensity(sm.S, p)
					sum += d
				}
				avg = sum / float64(len(suite))
			}
			b.ReportMetric(100*avg, "%density")
		})
	}
}

// BenchmarkFig5_ReductionOverhead builds the three reduction methods at 24
// threads and reports each working-set overhead over the serial SSS traffic.
func BenchmarkFig5_ReductionOverhead(b *testing.B) {
	suite, _ := benchSuite(b)
	for _, method := range []core.ReductionMethod{core.Naive, core.EffectiveRanges, core.Indexed} {
		b.Run(method.String(), func(b *testing.B) {
			pool := parallel.NewPool(24)
			defer pool.Close()
			var overhead float64
			for i := 0; i < b.N; i++ {
				sum := 0.0
				for _, sm := range suite {
					serial := core.SerialTraffic(sm.S)
					k := core.NewKernel(sm.S, method, pool)
					sum += float64(k.Traffic().RedBytes) /
						float64(serial.MultMatrixBytes+serial.MultVectorBytes)
				}
				overhead = sum / float64(len(suite))
			}
			b.ReportMetric(100*overhead, "%overhead")
		})
	}
}

// modeledSpeedup builds fmt at p threads for every suite matrix and reports
// the geometric-mean modeled speedup over serial CSR on pl.
func modeledSpeedup(b *testing.B, f harness.Format, pl perfmodel.Platform, p int) {
	suite, cfg := benchSuite(b)
	pl = pl.WithCacheScale(cfg.Scale)
	var speed float64
	for i := 0; i < b.N; i++ {
		logSum, n := 0.0, 0
		pool := parallel.NewPool(p)
		for _, sm := range suite {
			base := perfmodel.CSRCost(sm.CSR).SerialSeconds(pl)
			cost := harness.Build(sm, f, pool).Cost
			s := base / cost.Seconds(pl, p)
			if s > 0 {
				logSum += ln(s)
				n++
			}
		}
		pool.Close()
		speed = exp(logSum / float64(n))
	}
	b.ReportMetric(speed, "xCSRserial")
}

// BenchmarkFig9_ReductionMethods reports the Fig. 9 endpoints: modeled
// speedup of the three SSS reduction methods and CSR at each platform's
// featured thread count.
func BenchmarkFig9_ReductionMethods(b *testing.B) {
	for _, f := range []harness.Format{
		harness.FormatCSR, harness.FormatSSSNaive, harness.FormatSSSEffective, harness.FormatSSSIndexed,
	} {
		b.Run("Dunnington24/"+f.String(), func(b *testing.B) {
			modeledSpeedup(b, f, perfmodel.Dunnington, 24)
		})
		b.Run("Gainestown16/"+f.String(), func(b *testing.B) {
			modeledSpeedup(b, f, perfmodel.Gainestown, 16)
		})
	}
}

// BenchmarkFig10_Breakdown reports the modeled reduction share of the
// symmetric SpM×V at 24 threads on Dunnington per method.
func BenchmarkFig10_Breakdown(b *testing.B) {
	suite, cfg := benchSuite(b)
	pl := perfmodel.Dunnington.WithCacheScale(cfg.Scale)
	for _, f := range []harness.Format{
		harness.FormatSSSNaive, harness.FormatSSSEffective, harness.FormatSSSIndexed,
	} {
		b.Run(f.String(), func(b *testing.B) {
			var share float64
			for i := 0; i < b.N; i++ {
				pool := parallel.NewPool(24)
				sum := 0.0
				for _, sm := range suite {
					c := harness.Build(sm, f, pool).Cost
					sum += c.RedSeconds(pl, 24) / c.Seconds(pl, 24)
				}
				pool.Close()
				share = sum / float64(len(suite))
			}
			b.ReportMetric(100*share, "%reduction")
		})
	}
}

// BenchmarkFig11_CSXSym reports the Fig. 11 endpoints for CSX and CSX-Sym.
func BenchmarkFig11_CSXSym(b *testing.B) {
	for _, f := range []harness.Format{harness.FormatCSX, harness.FormatCSXSym} {
		b.Run("Dunnington24/"+f.String(), func(b *testing.B) {
			modeledSpeedup(b, f, perfmodel.Dunnington, 24)
		})
		b.Run("Gainestown16/"+f.String(), func(b *testing.B) {
			modeledSpeedup(b, f, perfmodel.Gainestown, 16)
		})
	}
}

// BenchmarkFig12_Gflops reports the suite-average modeled Gflop/s at 16
// threads on Gainestown per format (the Fig. 12 bars).
func BenchmarkFig12_Gflops(b *testing.B) {
	suite, cfg := benchSuite(b)
	pl := perfmodel.Gainestown.WithCacheScale(cfg.Scale)
	for _, f := range []harness.Format{
		harness.FormatCSR, harness.FormatCSX, harness.FormatSSSIndexed, harness.FormatCSXSym,
	} {
		b.Run(f.String(), func(b *testing.B) {
			var g float64
			for i := 0; i < b.N; i++ {
				pool := parallel.NewPool(16)
				sum := 0.0
				for _, sm := range suite {
					sum += harness.Build(sm, f, pool).Cost.Gflops(pl, 16)
				}
				pool.Close()
				g = sum / float64(len(suite))
			}
			b.ReportMetric(g, "Gflop/s")
		})
	}
}

// BenchmarkTableIII_RCM measures the full RCM pipeline (reordering +
// re-encoding) and reports the modeled CSX-Sym improvement at 24 threads on
// Dunnington (the Table III headline).
func BenchmarkTableIII_RCM(b *testing.B) {
	suite, cfg := benchSuite(b)
	pl := perfmodel.Dunnington.WithCacheScale(cfg.Scale)
	var improvement float64
	for i := 0; i < b.N; i++ {
		pool := parallel.NewPool(24)
		sum, n := 0.0, 0
		for _, sm := range suite {
			rm, err := sm.Reordered()
			if err != nil {
				b.Fatal(err)
			}
			before := harness.Build(sm, harness.FormatCSXSym, pool).Cost.Seconds(pl, 24)
			after := harness.Build(rm, harness.FormatCSXSym, pool).Cost.Seconds(pl, 24)
			sum += before/after - 1
			n++
		}
		pool.Close()
		improvement = sum / float64(n)
	}
	b.ReportMetric(100*improvement, "%improvement")
}

// BenchmarkFig13_Reordered reports the suite-average modeled Gflop/s of
// CSX-Sym on the RCM-reordered suite (the Fig. 13 bars).
func BenchmarkFig13_Reordered(b *testing.B) {
	suite, cfg := benchSuite(b)
	pl := perfmodel.Gainestown.WithCacheScale(cfg.Scale)
	var g float64
	for i := 0; i < b.N; i++ {
		pool := parallel.NewPool(16)
		sum := 0.0
		for _, sm := range suite {
			rm, err := sm.Reordered()
			if err != nil {
				b.Fatal(err)
			}
			sum += harness.Build(rm, harness.FormatCSXSym, pool).Cost.Gflops(pl, 16)
		}
		pool.Close()
		g = sum / float64(len(suite))
	}
	b.ReportMetric(g, "Gflop/s")
}

// BenchmarkPreprocCost measures real CSX-Sym construction (the §V-E cost)
// per suite matrix.
func BenchmarkPreprocCost(b *testing.B) {
	suite, _ := benchSuite(b)
	for _, sm := range suite {
		b.Run(sm.Spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = csx.NewSym(sm.S, 16, core.Indexed, csx.DefaultOptions())
			}
		})
	}
}

// BenchmarkFig14_CG runs the real CG solver (fixed iterations) on the host
// for the formats Fig. 14 compares, on the first suite matrix.
func BenchmarkFig14_CG(b *testing.B) {
	suite, _ := benchSuite(b)
	sm := suite[0]
	n := sm.S.N
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	for _, f := range []harness.Format{harness.FormatCSR, harness.FormatSSSIndexed, harness.FormatCSXSym} {
		b.Run(f.String(), func(b *testing.B) {
			pool := parallel.NewPool(parallel.DefaultThreads())
			defer pool.Close()
			built := harness.Build(sm, f, pool)
			op := built.Op()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x := make([]float64, n)
				benchCG(op, pool, rhs, x)
			}
		})
	}
}

// BenchmarkCGFusion isolates the phase-fusion win in the real solver: the
// same SSS-indexed kernel driven through the fused two-handoff iteration
// (MulVecDot + CGStep) versus the unfused path (MulVec, Dot, and the
// axpy/dot/xpay chain as separate dispatches). The iterates are bitwise
// identical; only the synchronization differs.
func BenchmarkCGFusion(b *testing.B) {
	suite, _ := benchSuite(b)
	sm := suite[0]
	n := sm.S.N
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	pool := parallel.NewPool(parallel.DefaultThreads())
	defer pool.Close()
	k := core.NewKernel(sm.S, core.Indexed, pool)
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x := make([]float64, n)
			benchCG(k, pool, rhs, x)
		}
	})
	b.Run("unfused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x := make([]float64, n)
			benchCG(cg.MulVecFunc(k.MulVec), pool, rhs, x)
		}
	})
}

// BenchmarkSpMVDispatch times the symmetric SpM×V per reduction method under
// both phase-dispatch strategies — the resident spin-barrier path versus the
// per-phase channel fallback — on a small matrix where synchronization cost
// is a visible fraction of the kernel. GOMAXPROCS is raised so the spin path
// is exercised even on small hosts.
func BenchmarkSpMVDispatch(b *testing.B) {
	suite, _ := benchSuite(b)
	sm := suite[0]
	n := sm.S.N
	const p = 4
	prev := runtime.GOMAXPROCS(0)
	if prev < p {
		runtime.GOMAXPROCS(p)
		defer runtime.GOMAXPROCS(prev)
	}
	for _, method := range []core.ReductionMethod{core.Naive, core.EffectiveRanges, core.Indexed} {
		for _, mode := range []parallel.PhaseMode{parallel.PhaseSpin, parallel.PhaseChannel} {
			name := "channel"
			if mode == parallel.PhaseSpin {
				name = "spin"
			}
			b.Run(fmt.Sprintf("%s/%s", method, name), func(b *testing.B) {
				pool := parallel.NewPool(p)
				defer pool.Close()
				pool.SetPhaseMode(mode)
				k := core.NewKernel(sm.S, method, pool)
				x := make([]float64, n)
				y := make([]float64, n)
				for i := range x {
					x[i] = 1.0 / float64(i+1)
				}
				flops := float64(2 * sm.S.LogicalNNZ())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k.MulVec(x, y)
				}
				b.StopTimer()
				gflops := flops * float64(b.N) / b.Elapsed().Seconds() / 1e9
				b.ReportMetric(gflops, "Gflop/s")
			})
		}
	}
}

// BenchmarkSpMV times the real kernels on this host with the §V-A protocol,
// per format, on the first (small, high-bandwidth) and a blocked matrix.
func BenchmarkSpMV(b *testing.B) {
	suite, _ := benchSuite(b)
	picks := suite
	if len(suite) > 3 {
		picks = []*harness.SuiteMatrix{suite[0], suite[2], suite[len(suite)-1]}
	}
	for _, sm := range picks {
		for _, f := range harness.AllFormats {
			b.Run(sm.Spec.Name+"/"+f.String(), func(b *testing.B) {
				pool := parallel.NewPool(parallel.DefaultThreads())
				defer pool.Close()
				built := harness.Build(sm, f, pool)
				n := sm.S.N
				x := make([]float64, n)
				y := make([]float64, n)
				for i := range x {
					x[i] = 1.0 / float64(i+1)
				}
				b.SetBytes(built.Bytes)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					built.Mul(x, y)
				}
			})
		}
	}
}

// BenchmarkSpMM measures the multi-vector kernel: streaming the matrix once
// across nv right-hand sides amortizes the dominant matrix traffic, so
// throughput per vector rises with nv (compare ns/op across sub-benches
// divided by the vector count).
func BenchmarkSpMM(b *testing.B) {
	suite, _ := benchSuite(b)
	sm := suite[2] // consph-analog: blocked structural
	s := sm.S
	pool := parallel.NewPool(parallel.DefaultThreads())
	defer pool.Close()
	k := core.NewKernel(s, core.Indexed, pool)
	for _, nv := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("vecs=%d", nv), func(b *testing.B) {
			x := make([]float64, s.N*nv)
			y := make([]float64, s.N*nv)
			for i := range x {
				x[i] = 1.0 / float64(i+1)
			}
			b.SetBytes(int64(2 * 8 * s.N * nv))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.MulMat(x, y, nv)
			}
		})
	}
}

func ln(v float64) float64  { return math.Log(v) }
func exp(v float64) float64 { return math.Exp(v) }

// benchCG runs a short fixed-iteration CG solve with the given operator
// (fused when it implements cg.MulVecDotter).
func benchCG(op cg.MulVecer, pool *parallel.Pool, rhs, x []float64) {
	_, _ = cg.Solve(op, pool, rhs, x, cg.Options{MaxIter: 16, FixedIterations: true})
}
