package symspmv

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// buildHubbySPD builds an SPD matrix with a few super-hub columns touched by
// almost every row — the degree skew hub caching targets.
func buildHubbySPD(t testing.TB, rng *rand.Rand, n int) *Matrix {
	t.Helper()
	b := NewBuilder(n)
	rowAbs := make([]float64, n)
	add := func(r, c int, v float64) {
		b.Set(r, c, v)
		rowAbs[r] += math.Abs(v)
		rowAbs[c] += math.Abs(v)
	}
	for r := 4; r < n; r++ {
		for h := 0; h < 4; h++ { // columns 0..3 are hubs
			add(r, h, rng.NormFloat64())
		}
		add(r, 4+rng.Intn(r-4+1), rng.NormFloat64())
	}
	for r := 0; r < n; r++ {
		b.Set(r, r, rowAbs[r]+1)
	}
	A, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return A
}

func TestHubCacheFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	A := buildHubbySPD(t, rng, 300)
	n := A.N()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	A.MulVec(x, want)
	for _, f := range []Format{SSSNaive, SSSEffective, SSSIndexed, SSSColored, CSXSym} {
		k, err := A.Kernel(f, Threads(3), HubCache())
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if !k.(*boundKernel).HubEnabled() {
			t.Fatalf("%v: hub did not engage on a hub-heavy matrix", f)
		}
		y := make([]float64, n)
		k.MulVec(x, y)
		for i := range want {
			if d := math.Abs(want[i] - y[i]); d > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%v: row %d differs by %g", f, i, d)
			}
		}
		k.Close()
	}

	// Unprofitable analysis (a hub-free matrix) must silently build plain.
	flat := buildRandomSPD(t, rng, 200, 2)
	k, err := flat.Kernel(SSSIndexed, Threads(2), HubCache())
	if err != nil {
		t.Fatal(err)
	}
	if k.(*boundKernel).HubEnabled() {
		t.Fatal("hub engaged on a matrix with no degree skew")
	}
	k.Close()

	// Forced thresholds engage it anyway.
	kf, err := flat.Kernel(SSSIndexed, Threads(2),
		HubCacheOptions(HubOptions{MaxCols: 16, MinDegree: 1, MinCoverage: -1}))
	if err != nil {
		t.Fatal(err)
	}
	if !kf.(*boundKernel).HubEnabled() {
		t.Fatal("forced hub thresholds did not engage")
	}
	kf.Close()

	// Atomic and unsymmetric formats reject the option.
	for _, f := range []Format{SSSAtomic, CSR, CSX, BCSR, CSB} {
		if _, err := A.Kernel(f, Threads(2), HubCache()); err == nil {
			t.Fatalf("%v: HubCache accepted", f)
		}
	}
}

func TestHubCacheMulMat(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	A := buildHubbySPD(t, rng, 250)
	n := A.N()
	const nv = 4
	x := make([]float64, n*nv)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n*nv)
	xc, yc := make([]float64, n), make([]float64, n)
	for v := 0; v < nv; v++ {
		for i := 0; i < n; i++ {
			xc[i] = x[i*nv+v]
		}
		A.MulVec(xc, yc)
		for i := 0; i < n; i++ {
			want[i*nv+v] = yc[i]
		}
	}
	for _, f := range []Format{SSSNaive, SSSEffective, SSSIndexed, SSSColored} {
		k, err := A.Kernel(f, Threads(4), HubCache())
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, n*nv)
		if err := MulMat(k, x, y, nv); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		for i := range want {
			if math.Abs(want[i]-y[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%v: component %d differs", f, i)
			}
		}
		k.Close()
	}
}

func TestMulMatTypedError(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	A := buildRandomSPD(t, rng, 60, 2)
	n := A.N()

	kx, err := A.Kernel(CSXSym, Threads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer kx.Close()
	var me *MulMatError
	err = MulMat(kx, make([]float64, n*2), make([]float64, n*2), 2)
	if !errors.As(err, &me) || me.Format != CSXSym || me.NV != 2 {
		t.Fatalf("expected *MulMatError{CSXSym, 2}, got %v", err)
	}

	ka, err := A.Kernel(SSSAtomic, Threads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer ka.Close()
	if err := MulMat(ka, make([]float64, n*2), make([]float64, n*2), 2); !errors.As(err, &me) {
		t.Fatalf("expected *MulMatError for atomic, got %v", err)
	}

	kr, err := A.Kernel(SSSIndexed, Threads(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := MulMat(kr, make([]float64, n), make([]float64, n), 0); !errors.As(err, &me) {
		t.Fatalf("expected *MulMatError for nv=0, got %v", err)
	}
	if err := MulMat(kr, make([]float64, n), make([]float64, n*2), 2); !errors.As(err, &me) {
		t.Fatalf("expected *MulMatError for short x, got %v", err)
	}
	kr.Close()
	if err := MulMat(kr, make([]float64, n*2), make([]float64, n*2), 2); !errors.As(err, &me) {
		t.Fatalf("expected *MulMatError on closed kernel, got %v", err)
	}
	if me.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestSolveCGBlockFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	A := buildHubbySPD(t, rng, 220)
	n := A.N()
	const nv = 4
	xstar := make([]float64, n*nv)
	for i := range xstar {
		xstar[i] = rng.NormFloat64()
	}
	for _, opt := range [][]Option{{Threads(4)}, {Threads(4), HubCache()}} {
		k, err := A.Kernel(SSSIndexed, opt...)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n*nv)
		if err := MulMat(k, xstar, b, nv); err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n*nv)
		res, err := SolveCGBlock(k, b, x, nv, CGOptions{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllConverged() {
			t.Fatalf("block CG did not converge: %v", res)
		}
		for i := range x {
			if math.Abs(x[i]-xstar[i]) > 1e-6 {
				t.Fatalf("component %d: %g vs %g", i, x[i], xstar[i])
			}
		}
		k.Close()
	}

	// Unsupported format surfaces the typed error.
	kx, err := A.Kernel(CSB, Threads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer kx.Close()
	var me *MulMatError
	if _, err := SolveCGBlock(kx, make([]float64, n*2), make([]float64, n*2), 2, CGOptions{}); !errors.As(err, &me) {
		t.Fatalf("expected *MulMatError, got %v", err)
	}
}
