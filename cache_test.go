package symspmv

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// savedKernelFile persists a CSX-Sym kernel and returns the file's path and
// raw bytes, plus the matrix it encodes.
func savedKernelFile(t *testing.T) (*Matrix, string, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(211))
	A := buildRandomSPD(t, rng, 200, 3)
	k, err := A.Kernel(CSXSym, Threads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	path := filepath.Join(t.TempDir(), "kernel.csxs")
	if err := SaveKernel(k, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return A, path, data
}

func TestKernelCacheRoundTrip(t *testing.T) {
	A, path, _ := savedKernelFile(t)
	k, err := LoadCSXSymKernel(path)
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	if k.Format() != CSXSym {
		t.Fatalf("loaded kernel format %v, want CSXSym", k.Format())
	}
	n := A.N()
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	want := make([]float64, n)
	got := make([]float64, n)
	A.MulVec(x, want)
	k.MulVec(x, got)
	for i := range got {
		if d := math.Abs(got[i] - want[i]); d > 1e-12*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("loaded kernel y[%d] = %g, serial %g", i, got[i], want[i])
		}
	}
	// Round-trip again: save the loaded kernel and reload it.
	path2 := filepath.Join(t.TempDir(), "again.csxs")
	if err := SaveKernel(k, path2); err != nil {
		t.Fatal(err)
	}
	k2, err := LoadCSXSymKernel(path2)
	if err != nil {
		t.Fatal(err)
	}
	k2.Close()
}

// TestKernelCacheTruncated checks that a kernel file cut off at any point —
// a torn write, a partial copy — loads as a clean error, never a panic or a
// silently wrong kernel.
func TestKernelCacheTruncated(t *testing.T) {
	_, path, data := savedKernelFile(t)
	// Sample cut points densely at the header and sparsely through the body.
	cuts := []int{0, 1, 2, 3, 4, 5, 7, 8, 11, 15, 16, 31}
	for c := 64; c < len(data); c += len(data)/64 + 1 {
		cuts = append(cuts, c)
	}
	cuts = append(cuts, len(data)-1)
	for _, cut := range cuts {
		if cut >= len(data) {
			continue
		}
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		k, err := LoadCSXSymKernel(path)
		if err == nil {
			k.Close()
			t.Fatalf("LoadCSXSymKernel accepted a file truncated to %d/%d bytes", cut, len(data))
		}
	}
}

// TestKernelCacheBitFlipped checks that single-bit corruption anywhere in
// the file is caught by the checksum (or structural validation) and loads
// as a clean error.
func TestKernelCacheBitFlipped(t *testing.T) {
	_, path, data := savedKernelFile(t)
	step := len(data)/97 + 1
	for i := 0; i < len(data); i += step {
		flipped := append([]byte(nil), data...)
		flipped[i] ^= 1 << uint(i%8)
		if err := os.WriteFile(path, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		k, err := LoadCSXSymKernel(path)
		if err == nil {
			k.Close()
			t.Fatalf("LoadCSXSymKernel accepted a bit flip at byte %d of %d", i, len(data))
		}
	}
}

func TestKernelCacheMissingFile(t *testing.T) {
	if _, err := LoadCSXSymKernel(filepath.Join(t.TempDir(), "absent.csxs")); err == nil {
		t.Fatal("LoadCSXSymKernel accepted a missing file")
	}
}

func TestSaveKernelRejectsOtherFormats(t *testing.T) {
	A, err := GeneratePoisson2D(12)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Format{CSR, BCSR, SSSIndexed, CSB} {
		k, err := A.Kernel(f, Threads(1))
		if err != nil {
			t.Fatal(err)
		}
		err = SaveKernel(k, filepath.Join(t.TempDir(), "x.csxs"))
		k.Close()
		if err == nil {
			t.Fatalf("SaveKernel accepted a %v kernel", f)
		}
	}
}
