package symspmv

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/matrix"
)

// SuiteNames lists the 12 matrices of the paper's Table I evaluation suite,
// in the paper's order (ascending nonzeros).
func SuiteNames() []string {
	names := make([]string, len(gen.PaperSuite))
	for i, sp := range gen.PaperSuite {
		names[i] = sp.Name
	}
	return names
}

// GenerateSuiteMatrix deterministically generates the synthetic analog of
// the named Table I matrix at the given scale (1.0 = the paper's size; the
// generators preserve nonzeros-per-row and structure class at any scale).
// All suite matrices are symmetric positive definite.
func GenerateSuiteMatrix(name string, scale float64) (*Matrix, error) {
	sp, err := gen.SpecByName(name)
	if err != nil {
		return nil, err
	}
	c, err := gen.Generate(sp, scale)
	if err != nil {
		return nil, err
	}
	return fromCOO(c)
}

// GeneratePoisson2D builds the standard 5-point finite-difference
// discretization of the Poisson equation on a side×side grid: the classic
// SPD model problem for CG (4 on the diagonal, −1 towards each grid
// neighbor).
func GeneratePoisson2D(side int) (*Matrix, error) {
	if side < 2 {
		return nil, fmt.Errorf("symspmv: Poisson grid side %d too small", side)
	}
	n := side * side
	c := matrix.NewCOO(n, n, 3*n)
	c.Symmetric = true
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			v := i*side + j
			c.Add(v, v, 4)
			if j > 0 {
				c.Add(v, v-1, -1)
			}
			if i > 0 {
				c.Add(v, v-side, -1)
			}
		}
	}
	return fromCOO(c)
}
